"""Hash-based star joins: the single-query pipelined right-deep plan and the
paper's *shared scan hash-based star join* (Section 3.1).

The shared operator streams the base table past every query's pipeline once:
the scan I/O is charged once, the dimension hash tables are built once per
distinct structure (via the shared :class:`~.pipeline.RollupCache`), and only
the per-query probe/filter/aggregate CPU grows with the number of queries —
exactly the trade-off the paper measures in Test 1 / Figure 10.

Both operators consume the scan as columnar page batches
(:func:`~.pipeline.scan_columns`): on the default kernel path the batches
come from the page's cached column arrays, on the tuple fallback they are
re-decoded per run — identical values, identical accounting.
"""

from __future__ import annotations

from typing import List, Sequence

from ...obs.analyze import OperatorActuals
from ...schema.lattice import source_can_answer
from ...schema.query import GroupByQuery
from .pipeline import ExecContext, QueryPipeline, RollupCache, scan_columns
from .results import QueryResult


class SharedScanHashStarJoin:
    """Evaluate several queries with one sequential scan of one base table."""

    def __init__(
        self,
        ctx: ExecContext,
        source_name: str,
        queries: Sequence[GroupByQuery],
    ):
        if not queries:
            raise ValueError("need at least one query")
        self.ctx = ctx
        self.source = ctx.entry(source_name)
        self.queries = list(queries)
        #: Filled during :meth:`run` — the operator's measured actuals.
        self.actuals = OperatorActuals(
            operator=type(self).__name__, source=source_name
        )
        for query in self.queries:
            if not source_can_answer(
                self.source.levels, self.source.source_aggregate, query
            ):
                raise ValueError(
                    f"{query.display_name()} cannot be answered from "
                    f"{source_name!r} (levels {self.source.levels}, "
                    f"measure {self.source.source_aggregate!r})"
                )

    def run(self) -> List[QueryResult]:
        """Execute the operator; returns per-query results in input order."""
        ctx = self.ctx
        rollups = RollupCache(
            ctx.schema, ctx.stats, pool=ctx.pool, dim_tables=ctx.dim_tables
        )
        pipelines = [
            QueryPipeline(
                ctx.schema,
                q,
                self.source.levels,
                rollups,
                source_aggregate=self.source.source_aggregate,
            )
            for q in self.queries
        ]
        actuals = self.actuals
        for page, keys, measures in scan_columns(
            ctx, self.source, type(self).__name__
        ):
            actuals.pages_scanned += 1
            actuals.rows_scanned += len(page.rows)
            for pipeline in pipelines:
                pipeline.process_batch(keys, measures, ctx.stats)
        results = [p.result() for p in pipelines]
        for query, pipeline, result in zip(self.queries, pipelines, results):
            actuals.record_pipeline(
                query.qid, pipeline, result, ctx.stats.rates
            )
        return results


class HashStarJoin(SharedScanHashStarJoin):
    """A single-query hash-based star join (the Figure 1 plan)."""

    def __init__(self, ctx: ExecContext, source_name: str, query: GroupByQuery):
        super().__init__(ctx, source_name, [query])

    def run_single(self) -> QueryResult:
        """Execute for the single query; returns its result."""
        return self.run()[0]
