"""The paper's contribution: shared star-join operators, multi-query
optimizers (TPLO / ETPLG / GG), and the plan executor."""

from .executor import (
    ClassExecution,
    ExecutionReport,
    execute_plan,
    run_class,
    run_class_accounted,
)
from .explain import explain_class, explain_plan
from .operators import (
    HashStarJoin,
    IndexStarJoin,
    MissingIndexError,
    QueryResult,
    SharedHybridStarJoin,
    SharedIndexStarJoin,
    SharedScanHashStarJoin,
)
from .optimizer import (
    CostModel,
    GlobalPlan,
    JoinMethod,
    LocalPlan,
    OPTIMIZERS,
    PlanClass,
    make_optimizer,
)

__all__ = [
    "ClassExecution",
    "CostModel",
    "ExecutionReport",
    "GlobalPlan",
    "HashStarJoin",
    "IndexStarJoin",
    "JoinMethod",
    "LocalPlan",
    "MissingIndexError",
    "OPTIMIZERS",
    "PlanClass",
    "QueryResult",
    "SharedHybridStarJoin",
    "SharedIndexStarJoin",
    "SharedScanHashStarJoin",
    "execute_plan",
    "explain_class",
    "explain_plan",
    "make_optimizer",
    "run_class",
    "run_class_accounted",
]
