"""Operator-tree EXPLAIN: render a plan class the way the paper draws its
Figures 1–5.

A class's method mix determines the physical operator the executor will
run; this module renders the same decision as an annotated ASCII tree with
catalog statistics, so users can inspect exactly what will be shared before
executing.
"""

from __future__ import annotations

from typing import List

from ..schema.star import StarSchema
from ..storage.catalog import Catalog, TableEntry
from .optimizer.plans import GlobalPlan, JoinMethod, LocalPlan, PlanClass


def _dim_structures(
    schema: StarSchema, entry: TableEntry, plans: List[LocalPlan]
) -> List[str]:
    """The shared dimension 'hash tables' the class will build: one rollup
    map per distinct (dimension, target level) and one filter mask per
    distinct predicate (mirrors RollupCache)."""
    maps = set()
    masks = set()
    for plan in plans:
        query = plan.query
        for d, dim in enumerate(schema.dimensions):
            stored = entry.levels[d]
            target = query.groupby.levels[d]
            if target not in (stored, dim.all_level):
                maps.add((d, stored, target))
            for pred in query.predicates_on(d):
                masks.add((d, stored, pred.level, pred.member_ids))
    lines = []
    for d, stored, target in sorted(maps):
        dim = schema.dimensions[d]
        lines.append(
            f"rollup {dim.level_name(stored)} -> {dim.level_name(target)} "
            f"({dim.n_members(stored)} entries)"
        )
    for d, stored, level, members in sorted(
        masks, key=lambda m: (m[0], m[2])
    ):
        dim = schema.dimensions[d]
        lines.append(
            f"filter mask on {dim.level_name(level)} "
            f"({len(members)} member(s), over {dim.n_members(stored)} keys)"
        )
    return lines


def _pipeline_line(schema: StarSchema, plan: LocalPlan) -> str:
    query = plan.query
    preds = len(query.predicates)
    return (
        f"{query.display_name()}: probe -> "
        f"{'filter(' + str(preds) + ' preds) -> ' if preds else ''}"
        f"aggregate[{query.aggregate.value.upper()}] "
        f"GROUP BY {query.groupby.name(schema)}"
    )


def _index_phase_lines(
    schema: StarSchema, entry: TableEntry, plan: LocalPlan
) -> List[str]:
    lines = []
    for pred in plan.query.predicates:
        dim = schema.dimensions[pred.dim_index]
        has_index = any(
            entry.index_for(pred.dim_index, level) is not None
            for level in range(pred.level, entry.levels[pred.dim_index] - 1, -1)
        )
        verb = "OR bitmaps" if has_index else "residual filter"
        lines.append(
            f"{verb}: {dim.level_name(pred.level)} "
            f"({len(pred.member_ids)} member(s))"
        )
    return lines


def explain_class(
    schema: StarSchema, catalog: Catalog, plan_class: PlanClass
) -> str:
    """Render one class as its physical operator tree."""
    entry = catalog.get(plan_class.source)
    hash_plans = [
        p for p in plan_class.plans if p.method is JoinMethod.HASH
    ]
    index_plans = [
        p for p in plan_class.plans if p.method is JoinMethod.INDEX
    ]
    if plan_class.has_derives:
        operator = "SharedDagStarJoin"
    elif plan_class.is_pure_hash:
        operator = (
            "SharedScanHashStarJoin"
            if len(plan_class.plans) > 1
            else "HashStarJoin"
        )
    elif plan_class.is_pure_index:
        operator = (
            "SharedIndexStarJoin"
            if len(plan_class.plans) > 1
            else "IndexStarJoin"
        )
    else:
        operator = "SharedHybridStarJoin"
    lines = [
        f"{operator} on {entry.name} "
        f"({entry.n_rows} rows, {entry.n_pages} pages"
        f"{', clustered' if entry.clustered else ''})"
    ]
    if plan_class.is_pure_index:
        for plan in index_plans:
            lines.append(f"├─ bitmap[{plan.query.display_name()}]:")
            for phase in _index_phase_lines(schema, entry, plan):
                lines.append(f"│    {phase}")
        lines.append("├─ OR the per-query bitmaps; probe base table once")
        lines.append("├─ route tuples (Filter tuples per query)")
    else:
        lines.append(f"├─ SeqScan({entry.name})")
        structures = _dim_structures(schema, entry, plan_class.plans)
        if structures:
            lines.append("├─ build shared dimension structures:")
            for structure in structures:
                lines.append(f"│    {structure}")
        for plan in index_plans:
            lines.append(
                f"├─ bitmap[{plan.query.display_name()}] "
                f"(filters the scan, no probe I/O):"
            )
            for phase in _index_phase_lines(schema, entry, plan):
                lines.append(f"│    {phase}")
    pipes = hash_plans + index_plans if not plan_class.is_pure_index else (
        index_plans
    )
    derive_steps = list(getattr(plan_class, "derives", None) or ())
    for i, plan in enumerate(pipes):
        last = i == len(pipes) - 1 and not derive_steps
        connector = "└─" if last else "├─"
        lines.append(f"{connector} {_pipeline_line(schema, plan)}")
    for i, step in enumerate(derive_steps):
        connector = "└─" if i == len(derive_steps) - 1 else "├─"
        bar = "   " if connector == "└─" else "│  "
        inter = step.intermediate
        lines.append(
            f"{connector} materialize {inter.groupby.name(schema)} "
            f"[{inter.aggregate.value.upper()}] (~{step.est_rows:.0f} rows)"
        )
        members = plan_class.derived_queries(step)
        for j, query in enumerate(members):
            sub = "└─" if j == len(members) - 1 else "├─"
            lines.append(
                f"{bar} {sub} derive {query.display_name()}: "
                f"re-aggregate -> GROUP BY {query.groupby.name(schema)}"
            )
    return "\n".join(lines)


def explain_plan(
    schema: StarSchema, catalog: Catalog, plan: GlobalPlan
) -> str:
    """Render a whole global plan: one operator tree per class."""
    header = (
        f"GlobalPlan[{plan.algorithm}] — {plan.n_queries} queries, "
        f"{len(plan.classes)} class(es), est {plan.est_cost_ms:.1f} sim-ms"
    )
    blocks = [header]
    for plan_class in plan.classes:
        blocks.append(explain_class(schema, catalog, plan_class))
    return "\n\n".join(blocks)
