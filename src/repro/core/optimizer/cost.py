"""The Section 5.1 cost model.

For a query ``X`` computed from a base table ``B``:

* hash-based star join: ``C = Cost_CPU + ΔCost_IO`` — the scan of ``B`` is
  the class's shared I/O; the query's own cost is CPU (probe, filter, copy,
  aggregate).
* index-based star join: ``C = Cost_CPU + Cost_IO_index + ΔCost_IO`` — the
  index lookups are private; the base-table probe is shared through the
  union bitmap (or becomes free when another class member already scans
  ``B``, Section 3.3).

The model mirrors the charges the executor actually makes, unit for unit, so
estimated and simulated cost correlate (checked by an ablation benchmark).
Estimates assume uniformly distributed data — the standard optimizer
assumption — plus a page-locality correction for tables clustered on their
leading dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...index.bitmap import WORD_BITS
from ...schema.lattice import (
    estimate_groupby_rows,
    expected_distinct,
    source_can_answer,
)
from ...schema.query import DimPredicate, GroupByQuery
from ...schema.star import StarSchema
from ...storage.catalog import Catalog, TableEntry
from ...storage.iostats import CostRates
from .plans import JoinMethod


@dataclass
class ClassCosting:
    """The outcome of costing one class: total cost plus the per-query join
    methods the model picked (aligned with the query list passed in)."""

    source: str
    cost_ms: float
    methods: List[JoinMethod]
    shared_io_ms: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)


class CostModel:
    """Estimates local-plan and class costs over the current catalog.

    ``statistics`` (the output of :func:`repro.engine.statistics.analyze`)
    switches predicate selectivities from the uniform assumption to measured
    frequencies for analyzed tables.
    """

    def __init__(
        self,
        schema: StarSchema,
        catalog: Catalog,
        rates: CostRates,
        statistics: Optional[Dict[str, object]] = None,
        dim_tables: Optional[Dict[str, object]] = None,
    ):
        self.schema = schema
        self.catalog = catalog
        self.rates = rates
        self.statistics = statistics or {}
        self.dim_tables = dim_tables or {}
        #: Number of class costings performed — the optimizers' search
        #: effort metric (the paper's future-work trade-off: GG searches
        #: more global plans than ETPLG, which searches more than TPLO).
        self.n_plan_costings = 0
        # Single-query costings recur constantly during greedy search; they
        # are memoized for the lifetime of this model (one optimize run).
        self._standalone_cache: Dict[Tuple[str, int], Optional[Tuple[JoinMethod, float]]] = {}

    # -- selectivity (uniform by default, measured when analyzed) -------------

    def predicate_selectivity(
        self, entry: TableEntry, predicate
    ) -> float:
        """Selectivity of one predicate (measured when statistics exist, else uniform)."""
        stats = self.statistics.get(entry.name)
        if stats is not None:
            measured = stats.predicate_selectivity(self.schema, predicate)
            if measured is not None:
                return measured
        return predicate.selectivity(self.schema)

    def query_selectivity(self, entry: TableEntry, query: GroupByQuery) -> float:
        """Product of the query's predicate selectivities on this source."""
        sel = 1.0
        for predicate in query.predicates:
            sel *= self.predicate_selectivity(entry, predicate)
        return sel

    # -- feasibility ------------------------------------------------------------

    def find_index(
        self, entry: TableEntry, predicate: DimPredicate
    ) -> Optional[Tuple[object, int]]:
        """The index usable for ``predicate`` on ``entry`` and the number of
        member payloads a lookup retrieves, or None."""
        dim = self.schema.dimensions[predicate.dim_index]
        stored = entry.levels[predicate.dim_index]
        for level in range(predicate.level, stored - 1, -1):
            index = entry.index_for(predicate.dim_index, level)
            if index is not None:
                if level == predicate.level:
                    n_lookups = len(predicate.member_ids)
                else:
                    per_member = dim.n_members(level) / dim.n_members(
                        predicate.level
                    )
                    n_lookups = int(
                        math.ceil(len(predicate.member_ids) * per_member)
                    )
                return index, n_lookups
        return None

    def can_index(self, entry: TableEntry, query: GroupByQuery) -> bool:
        """True if an index-based plan for ``query`` on ``entry`` exists —
        i.e. at least one predicate has a usable join index (the rest become
        residual filters)."""
        return any(
            self.find_index(entry, pred) is not None
            for pred in query.predicates
        )

    # -- elementary estimates ------------------------------------------------------

    def _probe_dims(self, query: GroupByQuery) -> int:
        """Dimensions whose hash table each tuple probes (mirrors
        :class:`QueryPipeline`)."""
        count = 0
        for d, dim in enumerate(self.schema.dimensions):
            target = query.groupby.levels[d]
            if target != dim.all_level or query.predicate_on(d) is not None:
                count += 1
        return count

    def _bitmap_words(self, entry: TableEntry) -> int:
        return (entry.n_rows + WORD_BITS - 1) // WORD_BITS

    def _matching_rows(self, entry: TableEntry, query: GroupByQuery) -> float:
        return entry.n_rows * self.query_selectivity(entry, query)

    def _process_cpu_ms(
        self, query: GroupByQuery, n_fed: float, n_pass: float
    ) -> float:
        """CPU to feed ``n_fed`` tuples through the query's pipeline, of
        which ``n_pass`` survive the filters."""
        r = self.rates
        return (
            n_fed * self._probe_dims(query) * r.hash_probe_ms
            + n_fed * len(query.predicates) * r.predicate_eval_ms
            + n_pass * (r.tuple_copy_ms + r.agg_update_ms)
        )

    def _builds_cpu_ms(
        self, entry: TableEntry, queries: Sequence[GroupByQuery]
    ) -> float:
        """Shared dimension-hash-table build cost: one rollup map per
        (dimension, target level) and one mask per distinct predicate."""
        r = self.rates
        maps: set = set()
        masks: set = set()
        for query in queries:
            for d, dim in enumerate(self.schema.dimensions):
                stored = entry.levels[d]
                target = query.groupby.levels[d]
                if target not in (stored, dim.all_level):
                    maps.add((d, target))
                pred = query.predicate_on(d)
                if pred is not None:
                    masks.add((d, pred.level, pred.member_ids))
        total = 0.0
        scan_ms = 0.0
        for d, _target in maps:
            total += self.schema.dimensions[d].n_members(entry.levels[d])
            scan_ms += self._dim_scan_ms(d)
        for d, _level, _members in masks:
            total += self.schema.dimensions[d].n_members(entry.levels[d])
            scan_ms += self._dim_scan_ms(d)
        return total * r.hash_build_ms + scan_ms

    def _dim_scan_ms(self, dim_index: int) -> float:
        """I/O to scan a stored dimension table for one structure build
        (zero when dimensions live in metadata only)."""
        dim_table = self.dim_tables.get(self.schema.dimensions[dim_index].name)
        if dim_table is None:
            return 0.0
        return dim_table.n_pages * self.rates.seq_page_read_ms

    def _index_phase(
        self, entry: TableEntry, query: GroupByQuery
    ) -> Optional[Tuple[float, float, float]]:
        """(io_ms, cpu_ms, indexed_selectivity) of building the query's
        result bitmap, or None when infeasible.

        ``indexed_selectivity`` is the product over *indexed* predicates
        only; unindexed predicates do not narrow the bitmap (they run as
        residual filters downstream).
        """
        if not query.predicates:
            return None
        r = self.rates
        words = self._bitmap_words(entry)
        io_ms = 0.0
        cpu_ms = 0.0
        indexed_sel = 1.0
        n_indexed = 0
        for pred in query.predicates:
            found = self.find_index(entry, pred)
            if found is None:
                continue
            index, n_lookups = found
            n_indexed += 1
            indexed_sel *= self.predicate_selectivity(entry, pred)
            io_ms += index.pages_per_lookup(n_lookups) * r.seq_page_read_ms
            cpu_ms += n_lookups * r.index_lookup_ms
            if n_lookups > 1:
                cpu_ms += (n_lookups - 1) * words * r.bitmap_word_ms
        if n_indexed == 0:
            return None
        if n_indexed > 1:
            cpu_ms += (n_indexed - 1) * words * r.bitmap_word_ms
        return io_ms, cpu_ms, indexed_sel

    def _region_and_runs(
        self, entry: TableEntry, query: GroupByQuery
    ) -> Tuple[float, int]:
        """Page locality of an index probe on a *clustered* table.

        Materialized group-bys are sorted by dimension-key order, so rows
        matching indexed predicates on a *prefix* of the dimension order
        cluster: each prefix predicate multiplies the candidate region down
        by its selectivity, but also splits the selection into one
        contiguous run per selected key combination, each potentially
        touching a partial boundary page.  Returns ``(region fraction,
        number of runs)``; the walk stops at the first dimension without an
        indexed predicate — deeper selections scatter across that
        dimension's runs and no longer shrink the region.
        """
        fraction = 1.0
        runs = 1
        for d in range(self.schema.n_dims):
            pred = query.predicate_on(d)
            if pred is None or self.find_index(entry, pred) is None:
                break
            fraction *= self.predicate_selectivity(entry, pred)
            dim = self.schema.dimensions[d]
            stored = entry.levels[d]
            # Selected key count at the table's stored level: each predicate
            # member fans out to its descendants there.
            per_member = dim.n_members(stored) / dim.n_members(pred.level)
            runs *= max(1, round(len(pred.member_ids) * per_member))
        return fraction, runs

    def _probe_pages(
        self,
        entry: TableEntry,
        queries: Sequence[GroupByQuery],
        indexed_sels: Sequence[float],
    ) -> float:
        """Expected distinct pages a union-bitmap probe touches: Cardenas
        over the clustered candidate region, plus one boundary page per
        additional contiguous run."""
        n, p = entry.n_rows, entry.n_pages
        union_sel = 1.0
        region_union = 1.0
        total_runs = 0
        for query, indexed_sel in zip(queries, indexed_sels):
            union_sel *= 1.0 - indexed_sel
            fraction, runs = self._region_and_runs(entry, query)
            region_union *= 1.0 - fraction
            total_runs += runs
        union_sel = 1.0 - union_sel
        region_union = 1.0 - region_union
        k_union = n * union_sel
        if not entry.clustered:
            return expected_distinct(float(p), k_union)
        region = max(1.0, p * region_union)
        pages = expected_distinct(region, k_union) + max(0, total_runs - 1)
        # A union probe can never touch more pages than the queries would
        # touch separately.
        separate_total = 0.0
        for query, indexed_sel in zip(queries, indexed_sels):
            fraction, runs = self._region_and_runs(entry, query)
            separate_total += expected_distinct(
                max(1.0, p * fraction), n * indexed_sel
            ) + max(0, runs - 1)
        return min(float(p), pages, separate_total)

    # -- class costing -----------------------------------------------------------

    def _scan_class(
        self, entry: TableEntry, queries: Sequence[GroupByQuery]
    ) -> ClassCosting:
        """Cost of the class when the base table is sequentially scanned:
        hash plans consume the scan; index plans filter it (Section 3.3)."""
        r = self.rates
        n = entry.n_rows
        scan_io = entry.n_pages * r.seq_page_read_ms
        total = scan_io + self._builds_cpu_ms(entry, queries)
        methods: List[JoinMethod] = []
        for query in queries:
            k = self._matching_rows(entry, query)
            hash_marginal = self._process_cpu_ms(query, n_fed=n, n_pass=k)
            index_phase = self._index_phase(entry, query)
            if index_phase is not None:
                idx_io, idx_cpu, indexed_sel = index_phase
                k_fed = n * indexed_sel
                filtered_marginal = (
                    idx_io
                    + idx_cpu
                    + n * r.bitmap_test_ms
                    + self._process_cpu_ms(query, n_fed=k_fed, n_pass=k)
                )
            else:
                filtered_marginal = math.inf
            if hash_marginal <= filtered_marginal:
                methods.append(JoinMethod.HASH)
                total += hash_marginal
            else:
                methods.append(JoinMethod.INDEX)
                total += filtered_marginal
        return ClassCosting(
            source=entry.name,
            cost_ms=total,
            methods=methods,
            shared_io_ms=scan_io,
            detail={"scan_io_ms": scan_io},
        )

    def _index_class(
        self, entry: TableEntry, queries: Sequence[GroupByQuery]
    ) -> Optional[ClassCosting]:
        """Cost of the class when all members are index joins sharing one
        union-bitmap probe (Section 3.2), or None if infeasible."""
        r = self.rates
        phases = []
        for query in queries:
            phase = self._index_phase(entry, query)
            if phase is None:
                return None
            phases.append(phase)
        indexed_sels = [phase[2] for phase in phases]
        probe_pages = self._probe_pages(entry, queries, indexed_sels)
        probe_io = probe_pages * r.rand_page_read_ms
        union_rows = entry.n_rows * (
            1.0 - math.prod(1.0 - sel for sel in indexed_sels)
        )
        total = probe_io + self._builds_cpu_ms(entry, queries)
        words = self._bitmap_words(entry)
        if len(queries) > 1:
            total += (len(queries) - 1) * words * r.bitmap_word_ms  # union OR
        for query, (idx_io, idx_cpu, indexed_sel) in zip(queries, phases):
            k = self._matching_rows(entry, query)
            k_fed = entry.n_rows * indexed_sel
            total += idx_io + idx_cpu
            total += union_rows * r.bitmap_test_ms  # tuple routing
            total += self._process_cpu_ms(query, n_fed=k_fed, n_pass=k)
        return ClassCosting(
            source=entry.name,
            cost_ms=total,
            methods=[JoinMethod.INDEX] * len(queries),
            shared_io_ms=probe_io,
            detail={"probe_io_ms": probe_io, "probe_pages": probe_pages},
        )

    def plan_class(
        self, entry: TableEntry, queries: Sequence[GroupByQuery]
    ) -> Optional[ClassCosting]:
        """Best costing of ``queries`` as one class on ``entry``; None if
        some query is not answerable from it."""
        if not queries:
            raise ValueError("a class needs at least one query")
        self.n_plan_costings += 1
        for query in queries:
            if not source_can_answer(
                entry.levels, entry.source_aggregate, query
            ):
                return None
        candidates = [self._scan_class(entry, queries)]
        all_index = self._index_class(entry, queries)
        if all_index is not None:
            candidates.append(all_index)
        return min(candidates, key=lambda c: c.cost_ms)

    def class_cost_given(
        self,
        entry: TableEntry,
        queries: Sequence[GroupByQuery],
        methods: Sequence[JoinMethod],
    ) -> float:
        """Cost of a class whose per-query join methods are already fixed
        (used to cost TPLO's merged plans, which keep local choices).

        **Linearity contract**: for fixed methods, the returned cost is an
        exact linear function of the :class:`CostRates` fields — every
        term is ``predicted_units * rate`` with the unit counts depending
        only on the catalog, statistics, and query shapes.  The
        calibration fitter (:mod:`repro.calibrate`) relies on this to
        extract per-unit predictions by re-costing classes against unit
        basis rates; a costing path that breaks linearity (e.g. a rate
        inside a ``max``/branch condition) would silently corrupt the fit,
        so :func:`repro.calibrate.observations.estimated_units` re-checks
        the decomposition per class.
        """
        if len(queries) != len(methods):
            raise ValueError("queries and methods must align")
        r = self.rates
        n = entry.n_rows
        if all(m is JoinMethod.INDEX for m in methods):
            costing = self._index_class(entry, queries)
            if costing is None:
                raise ValueError(
                    "index methods requested but index plan infeasible"
                )
            return costing.cost_ms
        total = entry.n_pages * r.seq_page_read_ms
        total += self._builds_cpu_ms(entry, queries)
        for query, method in zip(queries, methods):
            k = self._matching_rows(entry, query)
            if method is JoinMethod.HASH:
                total += self._process_cpu_ms(query, n_fed=n, n_pass=k)
            else:
                phase = self._index_phase(entry, query)
                if phase is None:
                    raise ValueError(
                        f"no index plan for {query.display_name()} on "
                        f"{entry.name!r}"
                    )
                idx_io, idx_cpu, indexed_sel = phase
                total += (
                    idx_io
                    + idx_cpu
                    + n * r.bitmap_test_ms
                    + self._process_cpu_ms(
                        query, n_fed=n * indexed_sel, n_pass=k
                    )
                )
        return total

    # -- DAG class costing (derive-from-shared-sub-aggregate) --------------------

    def _dag_builds_cpu_ms(
        self,
        entry: TableEntry,
        scan_queries: Sequence[GroupByQuery],
        derive_steps: Sequence[Tuple[GroupByQuery, Sequence[GroupByQuery]]],
    ) -> float:
        """Shared structure-build cost of a DAG class, mirroring the
        RollupCache keys the executor uses: one rollup map per (dimension,
        from level, to level) and one mask per distinct (dimension, from
        level, predicate).  Derived queries read the intermediate, so their
        structures key off — and are sized by — the intermediate's levels,
        not the base table's."""
        r = self.rates
        maps: set = set()
        masks: set = set()

        def collect(query: GroupByQuery, from_levels: Sequence[int]) -> None:
            for d, dim in enumerate(self.schema.dimensions):
                stored = from_levels[d]
                target = query.groupby.levels[d]
                if target not in (stored, dim.all_level):
                    maps.add((d, stored, target))
                pred = query.predicate_on(d)
                if pred is not None:
                    masks.add((d, stored, pred.level, pred.member_ids))

        for query in scan_queries:
            collect(query, entry.levels)
        for intermediate, derived in derive_steps:
            collect(intermediate, entry.levels)
            for query in derived:
                collect(query, intermediate.groupby.levels)

        total = 0.0
        scan_ms = 0.0
        for d, from_level, _target in maps:
            total += self.schema.dimensions[d].n_members(from_level)
            scan_ms += self._dim_scan_ms(d)
        for d, from_level, _level, _members in masks:
            total += self.schema.dimensions[d].n_members(from_level)
            scan_ms += self._dim_scan_ms(d)
        return total * r.hash_build_ms + scan_ms

    def intermediate_rows(
        self, entry: TableEntry, intermediate: GroupByQuery
    ) -> float:
        """Expected group count of a derive step's intermediate aggregate
        computed over ``entry``."""
        return float(
            estimate_groupby_rows(
                self.schema, intermediate.groupby.levels, entry.n_rows
            )
        )

    def derive_class(
        self,
        entry: TableEntry,
        scan_queries: Sequence[GroupByQuery],
        derive_steps: Sequence[Tuple[GroupByQuery, Sequence[GroupByQuery]]],
        row_safety: float = 1.0,
    ) -> Optional[ClassCosting]:
        """Cost of a DAG class (see :mod:`repro.dag`): one shared scan of
        ``entry`` feeds the ``scan_queries`` *and* each step's intermediate
        sub-aggregate; the step's derived queries then re-aggregate the
        in-memory intermediate — pure CPU over its (far fewer) group rows,
        no extra I/O.

        ``methods`` in the returned costing aligns with ``scan_queries``
        followed by every step's derived queries in order.  ``row_safety``
        inflates the intermediates' estimated group counts (the greedy
        search's guard against Cardenas underestimates; the final plan is
        costed with 1.0).  Returns None when a query or intermediate is
        not answerable.
        """
        if not derive_steps:
            raise ValueError("a DAG class needs at least one derive step")
        self.n_plan_costings += 1
        r = self.rates
        n = entry.n_rows
        for query in scan_queries:
            if not source_can_answer(
                entry.levels, entry.source_aggregate, query
            ):
                return None
        for intermediate, derived in derive_steps:
            if intermediate.predicates:
                return None
            if not source_can_answer(
                entry.levels, entry.source_aggregate, intermediate
            ):
                return None
            inter_agg = entry.source_aggregate or intermediate.aggregate.value
            for query in derived:
                if not source_can_answer(
                    intermediate.groupby.levels, inter_agg, query
                ):
                    return None
        scan_io = entry.n_pages * r.seq_page_read_ms
        total = scan_io + self._dag_builds_cpu_ms(
            entry, scan_queries, derive_steps
        )
        methods: List[JoinMethod] = []
        for query in scan_queries:
            k = self._matching_rows(entry, query)
            hash_marginal = self._process_cpu_ms(query, n_fed=n, n_pass=k)
            index_phase = self._index_phase(entry, query)
            if index_phase is not None:
                idx_io, idx_cpu, indexed_sel = index_phase
                filtered_marginal = (
                    idx_io
                    + idx_cpu
                    + n * r.bitmap_test_ms
                    + self._process_cpu_ms(
                        query, n_fed=n * indexed_sel, n_pass=k
                    )
                )
            else:
                filtered_marginal = math.inf
            if hash_marginal <= filtered_marginal:
                methods.append(JoinMethod.HASH)
                total += hash_marginal
            else:
                methods.append(JoinMethod.INDEX)
                total += filtered_marginal
        derive_rows = 0.0
        for intermediate, derived in derive_steps:
            # The intermediate has no predicates: every fed tuple updates
            # its aggregator, exactly as QueryPipeline will charge.
            total += self._process_cpu_ms(intermediate, n_fed=n, n_pass=n)
            m = row_safety * self.intermediate_rows(entry, intermediate)
            derive_rows += m
            for query in derived:
                k = m * self.query_selectivity(entry, query)
                total += self._process_cpu_ms(query, n_fed=m, n_pass=k)
                methods.append(JoinMethod.DERIVE)
        return ClassCosting(
            source=entry.name,
            cost_ms=total,
            methods=methods,
            shared_io_ms=scan_io,
            detail={"scan_io_ms": scan_io, "derive_rows": derive_rows},
        )

    # -- local-plan selection ------------------------------------------------------

    def standalone(
        self, entry: TableEntry, query: GroupByQuery
    ) -> Optional[Tuple[JoinMethod, float]]:
        """Best (method, cost) for the query alone on ``entry``
        (memoized per model instance)."""
        key = (entry.name, query.qid)
        if key in self._standalone_cache:
            return self._standalone_cache[key]
        costing = self.plan_class(entry, [query])
        result = (
            None if costing is None else (costing.methods[0], costing.cost_ms)
        )
        self._standalone_cache[key] = result
        return result

    def best_local(
        self,
        query: GroupByQuery,
        entries: Optional[Sequence[TableEntry]] = None,
    ) -> Tuple[TableEntry, JoinMethod, float]:
        """The paper's "optimal local plan": the cheapest (table, method)
        over the candidate materialized group-bys."""
        if entries is None:
            entries = self.catalog.entries()
        best: Optional[Tuple[TableEntry, JoinMethod, float]] = None
        for entry in entries:
            result = self.standalone(entry, query)
            if result is None:
                continue
            method, cost = result
            if best is None or cost < best[2]:
                best = (entry, method, cost)
        if best is None:
            raise ValueError(
                f"no candidate table can answer {query.display_name()}"
            )
        return best
