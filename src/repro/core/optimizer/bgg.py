"""Bounded Global Greedy (BGG) — the paper's future-work direction.

Section 8 observes that "in terms of the number of global plans searched,
GG dominates ETPLG and ETPLG dominates TPLO … this comes at a price", and
asks for "new algorithms that have both better time and space performance".

BGG is such a point on the trade-off curve: it runs GG's loop, but when a
class considers switching its shared base table to admit a new query, it
costs only a *bounded candidate set* instead of the whole catalog:

* the class's current base table (ETPLG's only option), and
* the ``beam`` cheapest standalone sources for the incoming query.

With ``beam = 0`` BGG degenerates to ETPLG (no rebasing); with ``beam >=``
the catalog size it is exactly GG.  The planning-effort ablation benchmark
places it between the two on search effort while matching GG's plan quality
on the paper's workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...schema.query import GroupByQuery, query_sort_key
from ...storage.catalog import TableEntry
from .gg import GGOptimizer, _Class


class BGGOptimizer(GGOptimizer):
    """Global Greedy with a beam-bounded rebase candidate set."""

    name = "bgg"

    def __init__(self, db, sort_key=query_sort_key, beam: int = 2):
        super().__init__(db, sort_key=sort_key)
        if beam < 0:
            raise ValueError("beam cannot be negative")
        self.beam = beam

    def _rebase_candidates(
        self, cls: _Class, query: GroupByQuery
    ) -> List[TableEntry]:
        """The bounded candidate set: current base + the query's ``beam``
        cheapest standalone sources."""
        candidates = {cls.entry.name: cls.entry}
        scored: List[Tuple[float, TableEntry]] = []
        for entry in self.entries():
            result = self.model.standalone(entry, query)
            if result is not None:
                scored.append((result[1], entry))
        scored.sort(key=lambda item: (item[0], item[1].name))
        for _cost, entry in scored[: self.beam]:
            candidates[entry.name] = entry
        return list(candidates.values())

    def _best_rebase(
        self, cls: _Class, query: GroupByQuery
    ) -> Optional[Tuple[TableEntry, float]]:
        best: Optional[Tuple[TableEntry, float]] = None
        for entry in self._rebase_candidates(cls, query):
            costing = self.model.plan_class(entry, cls.queries + [query])
            if costing is None:
                continue
            if best is None or costing.cost_ms < best[1]:
                best = (entry, costing.cost_ms)
        return best
