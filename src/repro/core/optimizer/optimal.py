"""Exhaustive global-optimal planner.

The paper's Tables 2 compare each algorithm against "the optimal global
plan … found by exploring all possible query plans".  This optimizer does
that: it enumerates every assignment of queries to candidate base tables,
costs each induced set of classes (join methods chosen optimally per class
by the cost model), and keeps the cheapest.  Exponential in the number of
queries — usable for the paper-sized workloads it exists to check.
"""

from __future__ import annotations

import itertools
from math import prod
from typing import List, Sequence

from ...schema.query import GroupByQuery
from ...storage.catalog import TableEntry
from .base import Optimizer, build_plan_class
from .plans import GlobalPlan

#: Refuse to enumerate beyond this many assignments.
MAX_ASSIGNMENTS = 500_000


class ExhaustiveOptimizer(Optimizer):
    """Try every query→base-table assignment; keep the cheapest plan."""

    name = "optimal"

    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries`` (see class docstring)."""
        queries = self._check_input(queries)
        candidates: List[List[TableEntry]] = []
        for query in queries:
            usable = [
                entry
                for entry in self.entries()
                if self.model.standalone(entry, query) is not None
            ]
            if not usable:
                raise ValueError(
                    f"no table can answer {query.display_name()}"
                )
            candidates.append(usable)
        n_assignments = prod(len(c) for c in candidates)
        if n_assignments > MAX_ASSIGNMENTS:
            raise ValueError(
                f"{n_assignments} assignments exceed the exhaustive search "
                f"budget ({MAX_ASSIGNMENTS}); use gg/etplg for workloads "
                f"this large"
            )
        best_cost = float("inf")
        best_assignment = None
        for assignment in itertools.product(*candidates):
            by_source = {}
            for query, entry in zip(queries, assignment):
                by_source.setdefault(entry.name, (entry, []))[1].append(query)
            total = 0.0
            feasible = True
            for entry, group in by_source.values():
                costing = self.model.plan_class(entry, group)
                if costing is None:
                    feasible = False
                    break
                total += costing.cost_ms
            if feasible and total < best_cost:
                best_cost = total
                best_assignment = assignment
        assert best_assignment is not None
        by_source = {}
        for query, entry in zip(queries, best_assignment):
            by_source.setdefault(entry.name, (entry, []))[1].append(query)
        plan = GlobalPlan(algorithm=self.name)
        for entry, group in by_source.values():
            plan.classes.append(build_plan_class(self.model, entry, group))
        plan.validate(queries)
        return plan
