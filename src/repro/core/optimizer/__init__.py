"""Multi-query optimizers: TPLO, ETPLG, GG (the paper's three algorithms),
plus the exhaustive optimal planner and a no-sharing naive baseline."""

from typing import TYPE_CHECKING, Dict, Type

from .base import Optimizer, build_plan_class
from .bgg import BGGOptimizer
from .cost import ClassCosting, CostModel
from .dp import DPOptimalOptimizer
from .etplg import ETPLGOptimizer
from .gg import GGOptimizer
from .naive import NaiveOptimizer
from .optimal import ExhaustiveOptimizer
from .plans import DagPlanClass, DeriveStep, GlobalPlan, JoinMethod, LocalPlan, PlanClass
from .tplo import TPLOOptimizer

# Imported late so repro.dag can lean on the submodules above (base, cost,
# plans, gg) without a cycle through this package __init__.
from ...dag.optimizer import DagOptimizer

if TYPE_CHECKING:  # pragma: no cover
    from ...engine.database import Database

OPTIMIZERS: Dict[str, Type[Optimizer]] = {
    "naive": NaiveOptimizer,
    "tplo": TPLOOptimizer,
    "etplg": ETPLGOptimizer,
    "gg": GGOptimizer,
    "bgg": BGGOptimizer,
    "optimal": ExhaustiveOptimizer,
    "dp": DPOptimalOptimizer,
    "dag": DagOptimizer,
}


def make_optimizer(name: str, db: "Database") -> Optimizer:
    """Instantiate an optimizer by its registry name."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}"
        ) from None
    return cls(db)


__all__ = [
    "BGGOptimizer",
    "ClassCosting",
    "CostModel",
    "DPOptimalOptimizer",
    "DagOptimizer",
    "DagPlanClass",
    "DeriveStep",
    "ETPLGOptimizer",
    "ExhaustiveOptimizer",
    "GGOptimizer",
    "GlobalPlan",
    "JoinMethod",
    "LocalPlan",
    "NaiveOptimizer",
    "OPTIMIZERS",
    "Optimizer",
    "PlanClass",
    "TPLOOptimizer",
    "build_plan_class",
    "make_optimizer",
]
