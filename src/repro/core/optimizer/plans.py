"""Plan representation: local plans, shared-base-table classes, global plans.

Terminology follows the paper:

* a **local plan** evaluates one query from one materialized group-by (its
  *base table*) with one star-join method;
* a **class** (Sections 5–6) is a set of local plans sharing one base table —
  the unit the shared operators of Section 3 execute together;
* a **global plan** is the set of classes covering every query of the MDX
  expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ...schema.query import GroupByQuery
from ...schema.star import StarSchema


class JoinMethod(Enum):
    """The paper's two star-join methods, plus the DAG layer's derive step
    (a query answered from a shared in-class sub-aggregate instead of the
    base-table scan — see :mod:`repro.dag`)."""

    HASH = "hash-based SJ"
    INDEX = "index-based SJ"
    DERIVE = "derive from shared sub-aggregate"


@dataclass(frozen=True)
class LocalPlan:
    """One query evaluated from one base table with one join method.

    ``est_standalone_ms`` is the estimated cost of running this plan alone;
    ``est_marginal_ms`` the estimated extra cost of running it inside its
    class (shared I/O excluded) — the quantity the paper calls
    ``CostOfUsing`` a shared base table.
    """

    query: GroupByQuery
    source: str
    method: JoinMethod
    est_standalone_ms: float = 0.0
    est_marginal_ms: float = 0.0

    def describe(self, schema: StarSchema) -> str:
        """Human-readable one-line/short rendering for display."""
        target = self.query.groupby.name(schema)
        return (
            f"({target} ⇒ {self.source}) [{self.method.value}]"
            f"  // {self.query.display_name()}"
        )


@dataclass
class PlanClass:
    """A set of local plans sharing one base table."""

    source: str
    plans: List[LocalPlan] = field(default_factory=list)
    est_cost_ms: float = 0.0

    @property
    def queries(self) -> List[GroupByQuery]:
        """The queries this object covers, in plan order."""
        return [plan.query for plan in self.plans]

    @property
    def methods(self) -> List[JoinMethod]:
        """Per-plan join methods, aligned with ``plans``."""
        return [plan.method for plan in self.plans]

    @property
    def is_pure_hash(self) -> bool:
        """True when every plan in the class is a hash join."""
        return all(p.method is JoinMethod.HASH for p in self.plans)

    @property
    def is_pure_index(self) -> bool:
        """True when every plan in the class is an index join."""
        return all(p.method is JoinMethod.INDEX for p in self.plans)

    @property
    def has_derives(self) -> bool:
        """True when the class carries shared sub-aggregate derive steps
        (only :class:`DagPlanClass` instances ever do)."""
        return bool(getattr(self, "derives", None))

    def describe(self, schema: StarSchema) -> str:
        """Human-readable one-line/short rendering for display."""
        lines = [
            f"Class[{self.source}]  est={self.est_cost_ms:.1f} sim-ms"
        ]
        lines.extend("  " + plan.describe(schema) for plan in self.plans)
        return "\n".join(lines)


@dataclass(frozen=True)
class DeriveStep:
    """One shared sub-aggregate materialized inside a class.

    ``intermediate`` is a synthetic, predicate-free group-by query at the
    meet of the derived queries' required levels; the class's shared scan
    computes it once, and every member plan whose qid is in ``qids`` (all
    carrying :attr:`JoinMethod.DERIVE`) is answered by re-aggregating the
    intermediate's in-memory result instead of the base-table scan.

    ``node_key`` is the structural hash of the DAG OR-node this step
    materializes (see :mod:`repro.dag.nodes`); ``est_rows`` the model's
    estimate of the intermediate's group count.
    """

    intermediate: GroupByQuery
    qids: Tuple[int, ...]
    est_rows: float = 0.0
    node_key: str = ""


@dataclass
class DagPlanClass(PlanClass):
    """A plan class extended with shared sub-aggregate derive steps.

    Executes on ``SharedDagStarJoin``: one scan of the base table feeds the
    hash/index members *and* each derive step's intermediate aggregate;
    derived members then consume the (much smaller) intermediates.
    Without derive steps it is operationally identical to a plain
    :class:`PlanClass`.
    """

    derives: List[DeriveStep] = field(default_factory=list)

    def derived_queries(self, step: DeriveStep) -> List[GroupByQuery]:
        """The member queries one derive step answers, in plan order."""
        wanted = set(step.qids)
        return [p.query for p in self.plans if p.query.qid in wanted]

    def describe(self, schema: StarSchema) -> str:
        lines = [super().describe(schema)]
        for step in self.derives:
            lines.append(
                f"  materialize {step.intermediate.groupby.name(schema)} "
                f"[{step.intermediate.aggregate.value.upper()}] "
                f"(~{step.est_rows:.0f} rows) -> derives qids "
                f"{sorted(step.qids)}"
            )
        return "\n".join(lines)


@dataclass
class GlobalPlan:
    """The full plan for one multi-query optimization problem."""

    algorithm: str
    classes: List[PlanClass] = field(default_factory=list)
    #: Planning-effort metadata attached by Database.optimize:
    #: {"plan_costings": int, "planning_s": float}.
    search_stats: dict = field(default_factory=dict)

    @property
    def est_cost_ms(self) -> float:
        """Model-estimated cost in simulated milliseconds."""
        return sum(cls.est_cost_ms for cls in self.classes)

    @property
    def queries(self) -> List[GroupByQuery]:
        """The queries this object covers, in plan order."""
        return [plan.query for cls in self.classes for plan in cls.plans]

    @property
    def n_queries(self) -> int:
        """Number of queries the plan covers."""
        return sum(len(cls.plans) for cls in self.classes)

    def plan_for(self, query: GroupByQuery) -> LocalPlan:
        """The local plan of one query (KeyError if absent)."""
        for cls in self.classes:
            for plan in cls.plans:
                if plan.query.qid == query.qid:
                    return plan
        raise KeyError(f"no plan for {query.display_name()}")

    def sources_used(self) -> List[str]:
        """Sorted distinct base-table names the plan reads."""
        return sorted({cls.source for cls in self.classes})

    def explain(self, schema: StarSchema) -> str:
        """Pretty-print in the paper's plan notation."""
        lines = [
            f"GlobalPlan[{self.algorithm}]  "
            f"{self.n_queries} queries in {len(self.classes)} class(es), "
            f"estimated {self.est_cost_ms:.1f} sim-ms"
        ]
        for cls in self.classes:
            lines.append(cls.describe(schema))
        return "\n".join(lines)

    def to_dict(self, schema: StarSchema) -> dict:
        """A JSON-serializable rendering of the plan, for tooling."""
        return {
            "algorithm": self.algorithm,
            "est_cost_ms": round(self.est_cost_ms, 3),
            "search_stats": dict(self.search_stats),
            "classes": [
                {
                    "source": cls.source,
                    "est_cost_ms": round(cls.est_cost_ms, 3),
                    "plans": [
                        {
                            "query": plan.query.display_name(),
                            "groupby": plan.query.groupby.name(schema),
                            "method": plan.method.value,
                            "est_standalone_ms": round(
                                plan.est_standalone_ms, 3
                            ),
                            "est_marginal_ms": round(plan.est_marginal_ms, 3),
                        }
                        for plan in cls.plans
                    ],
                }
                for cls in self.classes
            ],
        }

    def validate(
        self,
        queries: Sequence[GroupByQuery],
        allow_duplicate_sources: bool = False,
    ) -> None:
        """Check the plan covers exactly the given queries, once each.

        Merging algorithms must not leave two classes on the same base table;
        the deliberately-unmerged naive baseline passes
        ``allow_duplicate_sources=True``.
        """
        planned = sorted(q.qid for q in self.queries)
        asked = sorted(q.qid for q in queries)
        if planned != asked:
            raise ValueError(
                f"plan covers query ids {planned}, expected {asked}"
            )
        if not allow_duplicate_sources:
            seen_sources = [cls.source for cls in self.classes]
            if len(seen_sources) != len(set(seen_sources)):
                raise ValueError(
                    f"two classes share a base table: {seen_sources} "
                    f"(they should have been merged)"
                )
