"""Global Greedy (GG), Section 6.

Like ETPLG, GG grows the global plan one query at a time; the difference is
that a class may *change its shared base table* to admit the new query.  For
each existing class the algorithm finds the base table ``S'`` minimizing the
aggregate cost of the class plus the new query (``CostOfAdd``); if joining
the cheapest class beats opening a new class on the best unused table, the
query is added — re-planning every member on ``S'`` when the base switched —
and classes that end up on the same base table are merged (``MergeClass``).

This is what lets GG trade expensive I/O for cheap CPU, e.g. computing a
query from a *larger-than-locally-optimal* table whose scan is already paid
for (the paper's Example 2 and its Tests 4–5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ...schema.query import GroupByQuery, query_sort_key
from ...storage.catalog import TableEntry
from .base import Optimizer, build_plan_class
from .plans import GlobalPlan


@dataclass
class _Class:
    entry: TableEntry
    queries: List[GroupByQuery] = field(default_factory=list)


class GGOptimizer(Optimizer):
    """Greedy class growth with mutable class base tables.

    ``sort_key`` overrides the processing order (default: the paper's
    "Sort G by GroupbyLevel") — exposed for ablation studies.
    """

    name = "gg"

    def __init__(self, db, sort_key=query_sort_key):
        super().__init__(db)
        self.sort_key = sort_key

    def _best_rebase(
        self, cls: _Class, query: GroupByQuery
    ) -> Optional[Tuple[TableEntry, float]]:
        """The base table S' minimizing Cost(Class ∪ {query} | S'), over
        every catalog entry able to answer all member queries plus the new
        one.  Returns (S', aggregate cost) or None."""
        best: Optional[Tuple[TableEntry, float]] = None
        for entry in self.entries():
            costing = self.model.plan_class(entry, cls.queries + [query])
            if costing is None:
                continue
            if best is None or costing.cost_ms < best[1]:
                best = (entry, costing.cost_ms)
        return best

    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries`` (see class docstring)."""
        queries = self._check_input(queries)
        ordered = sorted(queries, key=self.sort_key)
        classes: List[_Class] = []
        used: Set[str] = set()
        n_rebases = 0
        with self.tracer.span(
            "optimize.gg.grow", n_queries=len(queries)
        ) as grow_span:
            for query in ordered:
                # Best unused materialized group-by N (the MSet).
                unused = [e for e in self.entries() if e.name not in used]
                n_entry: Optional[TableEntry] = None
                n_cost = float("inf")
                if unused:
                    try:
                        n_entry, _method, n_cost = self.model.best_local(
                            query, unused
                        )
                    except ValueError:
                        n_entry = None
                # Cheapest class to add the query to, allowing a base switch.
                best_class: Optional[_Class] = None
                best_rebase: Optional[Tuple[TableEntry, float]] = None
                best_cost_of_add = float("inf")
                for cls in classes:
                    rebase = self._best_rebase(cls, query)
                    if rebase is None:
                        continue
                    current = self.model.plan_class(cls.entry, cls.queries)
                    assert current is not None
                    cost_of_add = rebase[1] - current.cost_ms
                    if cost_of_add < best_cost_of_add:
                        best_cost_of_add = cost_of_add
                        best_class = cls
                        best_rebase = rebase
                if best_class is None or (
                    n_entry is not None and n_cost < best_cost_of_add
                ):
                    if n_entry is None:
                        raise ValueError(
                            f"no table can answer {query.display_name()}"
                        )
                    classes.append(_Class(entry=n_entry, queries=[query]))
                    used.add(n_entry.name)
                else:
                    assert best_rebase is not None
                    new_entry = best_rebase[0]
                    if new_entry.name != best_class.entry.name:
                        # SharedSet = SharedSet - S + S'.
                        used.discard(best_class.entry.name)
                        used.add(new_entry.name)
                        best_class.entry = new_entry
                        n_rebases += 1
                    best_class.queries.append(query)
                    classes = self._merge_classes(classes)
            grow_span.set("n_classes", len(classes))
            grow_span.set("n_rebases", n_rebases)
        self._count_class_opened(len(classes))
        with self.tracer.span("optimize.gg.finalize"):
            plan = GlobalPlan(algorithm=self.name)
            for cls in classes:
                plan.classes.append(
                    build_plan_class(self.model, cls.entry, cls.queries)
                )
        plan.validate(queries)
        return plan

    @staticmethod
    def _merge_classes(classes: List[_Class]) -> List[_Class]:
        """The paper's MergeClass(): classes sharing a base table become one,
        preventing repeated I/O on the same table."""
        merged: List[_Class] = []
        by_name = {}
        for cls in classes:
            existing = by_name.get(cls.entry.name)
            if existing is None:
                by_name[cls.entry.name] = cls
                merged.append(cls)
            else:
                existing.queries.extend(cls.queries)
        return merged
