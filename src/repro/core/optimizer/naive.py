"""The no-sharing baseline.

"A data source can always evaluate the queries one after another without
regard for the relationships between them" (Section 1).  This optimizer does
exactly that: each query gets its locally optimal plan and runs in its own
single-member class, so the executor shares nothing — the paper's dotted
"queries running separately" bars.
"""

from __future__ import annotations

from typing import Sequence

from ...schema.query import GroupByQuery
from .base import Optimizer, build_plan_class
from .plans import GlobalPlan


class NaiveOptimizer(Optimizer):
    """One isolated class per query; local optimization only."""

    name = "naive"
    #: Deliberately-unmerged baseline: excluded from calibration sweeps.
    in_calibration = False

    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries`` (see class docstring)."""
        queries = self._check_input(queries)
        plan = GlobalPlan(algorithm=self.name)
        for query in queries:
            entry, _method, _cost = self.model.best_local(query)
            plan.classes.append(build_plan_class(self.model, entry, [query]))
        plan.validate(queries, allow_duplicate_sources=True)
        return plan
