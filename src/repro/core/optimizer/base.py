"""Shared optimizer scaffolding."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence

from ...obs.metrics import default_registry
from ...obs.trace import NULL_TRACER
from ...schema.query import GroupByQuery
from ...storage.catalog import TableEntry
from .cost import CostModel
from .plans import GlobalPlan, LocalPlan, PlanClass

if TYPE_CHECKING:  # pragma: no cover
    from ...engine.database import Database


def build_plan_class(
    model: CostModel, entry: TableEntry, queries: Sequence[GroupByQuery]
) -> PlanClass:
    """Materialize a :class:`PlanClass` from the model's best costing of
    ``queries`` on ``entry``, including per-plan standalone and marginal
    estimates (the paper's ``CostOfUsing``)."""
    costing = model.plan_class(entry, queries)
    if costing is None:
        raise ValueError(
            f"class on {entry.name!r} cannot answer all of its queries"
        )
    plans: List[LocalPlan] = []
    for i, (query, method) in enumerate(zip(queries, costing.methods)):
        standalone = model.standalone(entry, query)
        others = [q for j, q in enumerate(queries) if j != i]
        if others:
            rest = model.plan_class(entry, others)
            marginal = costing.cost_ms - (rest.cost_ms if rest else 0.0)
        else:
            marginal = costing.cost_ms
        plans.append(
            LocalPlan(
                query=query,
                source=entry.name,
                method=method,
                est_standalone_ms=standalone[1] if standalone else 0.0,
                est_marginal_ms=marginal,
            )
        )
    return PlanClass(source=entry.name, plans=plans, est_cost_ms=costing.cost_ms)


class Optimizer(ABC):
    """Base class: holds the database handle and a cost model over its
    catalog."""

    name: str = "base"
    #: Whether calibration sweeps (``repro calibrate`` / ``repro bench``)
    #: include this algorithm.  Subclasses opt out when their plans would
    #: only add noise (deliberately-unmerged baselines, duplicates of
    #: another registered algorithm).
    in_calibration: bool = True

    def __init__(self, db: "Database"):
        self.db = db
        self.model = CostModel(
            db.schema,
            db.catalog,
            db.stats.rates,
            statistics=getattr(db, "table_statistics", None),
            dim_tables=getattr(db, "dimension_tables", None),
        )

    def entries(self) -> List[TableEntry]:
        """All registered entries, in registration order."""
        return self.db.catalog.entries()

    @property
    def tracer(self):
        """The owning database's tracer (no-op unless tracing is enabled)."""
        return getattr(self.db, "tracer", NULL_TRACER)

    def _count_class_opened(self, n: int = 1) -> None:
        """Bump the ``optimizer.classes_opened`` metric."""
        default_registry().counter(
            "optimizer.classes_opened",
            "plan classes opened on a new base table during planning",
        ).inc(n)

    @abstractmethod
    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries``."""

    def _check_input(self, queries: Sequence[GroupByQuery]) -> List[GroupByQuery]:
        if not queries:
            raise ValueError("nothing to optimize: no queries given")
        qids = [q.qid for q in queries]
        if len(set(qids)) != len(qids):
            raise ValueError("duplicate query objects in the input")
        for query in queries:
            query.validate(self.db.schema)
        return list(queries)
