"""Two Phase Local Optimal (TPLO), Section 4.

Phase one independently picks, for each component query, the best
materialized group-by and join method — the "optimal local plan".  Phase two
merges whatever common subtasks happen to exist: local plans that chose the
same base table become one class, executed with the shared operators of
Section 3.  TPLO never *creates* sharing; when the locally optimal tables
all differ (the paper's Figure 6 situation and its Test 7), nothing merges.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ...schema.query import GroupByQuery
from ...storage.catalog import TableEntry
from .base import Optimizer
from .plans import GlobalPlan, JoinMethod, LocalPlan, PlanClass


class TPLOOptimizer(Optimizer):
    """Locally optimal plans, then merge identical base tables."""

    name = "tplo"

    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries`` (see class docstring)."""
        queries = self._check_input(queries)
        # Phase one: the optimal local plan per query.
        locals_: List[Tuple[GroupByQuery, TableEntry, JoinMethod, float]] = []
        with self.tracer.span("optimize.tplo.local", n_queries=len(queries)):
            for query in queries:
                entry, method, cost = self.model.best_local(query)
                locals_.append((query, entry, method, cost))
        # Phase two: merge plans sharing a base table into classes.  Local
        # method choices are kept (phase two only shares subtasks; it does
        # not re-plan).
        with self.tracer.span("optimize.tplo.merge") as merge_span:
            by_source: Dict[str, List[Tuple[GroupByQuery, TableEntry, JoinMethod, float]]] = {}
            for item in locals_:
                by_source.setdefault(item[1].name, []).append(item)
            plan = GlobalPlan(algorithm=self.name)
            for source, items in by_source.items():
                entry = items[0][1]
                class_queries = [item[0] for item in items]
                methods = [item[2] for item in items]
                est = self.model.class_cost_given(entry, class_queries, methods)
                plans = [
                    LocalPlan(
                        query=query,
                        source=source,
                        method=method,
                        est_standalone_ms=cost,
                        est_marginal_ms=cost,
                    )
                    for query, _entry, method, cost in items
                ]
                plan.classes.append(
                    PlanClass(source=source, plans=plans, est_cost_ms=est)
                )
            merge_span.set("n_classes", len(plan.classes))
        self._count_class_opened(len(plan.classes))
        plan.validate(queries)
        return plan
