"""Exact optimization by dynamic programming over query subsets.

The exhaustive planner enumerates every query→table assignment —
``|tables| ^ |queries|`` costings — which explodes past a handful of
queries.  The same optimum decomposes over *classes*: an optimal global
plan partitions the query set, and each part is one class on its best base
table.  That gives the classic set-partition DP

    cost(S) = min over nonempty T ⊆ S:  best_class(T) + cost(S − T)

evaluated over subset bitmasks (``3^n`` subset pairs instead of ``t^n``
assignments), with each ``best_class(T)`` costed once and memoized.  For
the paper's 3-query workloads this matches the exhaustive planner exactly
(a test pins that); for 8–10 query batches it is orders of magnitude
cheaper while still exact under the cost model's class-additivity (classes
on distinct tables share nothing, which holds for cold execution).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...schema.query import GroupByQuery
from ...storage.catalog import TableEntry
from .base import Optimizer, build_plan_class
from .plans import GlobalPlan

#: Refuse instances whose subset lattice would be unreasonably large
#: (the DP walks ~3^n subset pairs and costs 2^n·|tables| classes).
MAX_QUERIES = 12


class DPOptimalOptimizer(Optimizer):
    """Exact set-partition DP: optimal plans for moderate batch sizes."""

    name = "dp"
    #: Plans identically to "optimal" on the paper workload; excluded from
    #: calibration sweeps to avoid double-counting one plan shape.
    in_calibration = False

    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries`` (see class docstring)."""
        queries = self._check_input(queries)
        n = len(queries)
        if n > MAX_QUERIES:
            raise ValueError(
                f"{n} queries exceed the DP budget ({MAX_QUERIES}); "
                f"use gg/bgg for batches this large"
            )
        entries = self.entries()
        full = (1 << n) - 1

        # best_class[mask] = (cost, entry) of the cheapest single class
        # covering exactly the queries in mask, or None if no table answers
        # them all.
        best_class: List[Optional[Tuple[float, TableEntry]]] = [None] * (
            full + 1
        )
        for mask in range(1, full + 1):
            subset = [queries[i] for i in range(n) if mask >> i & 1]
            best: Optional[Tuple[float, TableEntry]] = None
            for entry in entries:
                costing = self.model.plan_class(entry, subset)
                if costing is None:
                    continue
                if best is None or costing.cost_ms < best[0]:
                    best = (costing.cost_ms, entry)
            best_class[mask] = best

        INF = float("inf")
        cost: List[float] = [INF] * (full + 1)
        choice: List[int] = [0] * (full + 1)  # the class mask taken at S
        cost[0] = 0.0
        for mask in range(1, full + 1):
            # Fix the lowest set bit inside the chosen class to avoid
            # enumerating every partition n! times.
            low = mask & -mask
            sub = mask
            while sub:
                if sub & low:
                    klass = best_class[sub]
                    if klass is not None:
                        candidate = klass[0] + cost[mask ^ sub]
                        if candidate < cost[mask]:
                            cost[mask] = candidate
                            choice[mask] = sub
                sub = (sub - 1) & mask
        if cost[full] == INF:
            raise ValueError("some query cannot be answered by any table")

        plan = GlobalPlan(algorithm=self.name)
        mask = full
        while mask:
            sub = choice[mask]
            subset = [queries[i] for i in range(n) if sub >> i & 1]
            entry = best_class[sub][1]  # type: ignore[index]
            plan.classes.append(build_plan_class(self.model, entry, subset))
            mask ^= sub
        # Two parts may have landed on the same table only if splitting was
        # cheaper than one class there — which class-additivity forbids for
        # an optimal plan, but guard for cost-model ties by merging.
        self._merge_same_source(plan)
        plan.validate(queries)
        return plan

    def _merge_same_source(self, plan: GlobalPlan) -> None:
        by_source: Dict[str, int] = {}
        merged = []
        for cls in plan.classes:
            if cls.source in by_source:
                target = merged[by_source[cls.source]]
                entry = self.db.catalog.get(cls.source)
                combined = build_plan_class(
                    self.model, entry, target.queries + cls.queries
                )
                merged[by_source[cls.source]] = combined
            else:
                by_source[cls.source] = len(merged)
                merged.append(cls)
        plan.classes[:] = merged
