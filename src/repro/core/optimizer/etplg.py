"""Extended Two Phase Local Greedy (ETPLG), Section 5.

Queries are processed in ``GroupbyLevel`` order (finest target group-by
first).  Each query either joins an existing class — paying only its
*marginal* cost ``CostOfUsing(S.BaseTable())``, since the class's base-table
I/O is already shared — or opens a new class on the best still-unused
materialized group-by ``D``.  Once a class picks its base table it never
changes it; lifting that restriction is exactly what Global Greedy adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ...schema.query import GroupByQuery, query_sort_key
from ...storage.catalog import TableEntry
from .base import Optimizer, build_plan_class
from .plans import GlobalPlan


@dataclass
class _Class:
    """A class under construction: a base table and its member queries."""

    entry: TableEntry
    queries: List[GroupByQuery] = field(default_factory=list)


class ETPLGOptimizer(Optimizer):
    """Greedy class growth with immutable class base tables.

    ``sort_key`` overrides the processing order (default: the paper's
    "Sort G by GroupbyLevel", finest target first) — exposed for ablation
    studies of greedy-order sensitivity.
    """

    name = "etplg"

    def __init__(self, db, sort_key=query_sort_key):
        super().__init__(db)
        self.sort_key = sort_key

    def optimize(self, queries: Sequence[GroupByQuery]) -> GlobalPlan:
        """Produce a global plan covering ``queries`` (see class docstring)."""
        queries = self._check_input(queries)
        ordered = sorted(queries, key=self.sort_key)
        classes: List[_Class] = []
        used: Set[str] = set()
        with self.tracer.span(
            "optimize.etplg.grow", n_queries=len(queries)
        ) as grow_span:
            for query in ordered:
                # The best still-unused materialized group-by D (the MSet).
                unused = [e for e in self.entries() if e.name not in used]
                d_entry: Optional[TableEntry] = None
                d_cost = float("inf")
                if unused:
                    try:
                        d_entry, _method, d_cost = self.model.best_local(
                            query, unused
                        )
                    except ValueError:
                        d_entry = None
                # The cheapest class to join: marginal CostOfUsing(S.BaseTable()).
                best_class: Optional[_Class] = None
                best_marginal = float("inf")
                for cls in classes:
                    grown = self.model.plan_class(cls.entry, cls.queries + [query])
                    if grown is None:
                        continue
                    current = self.model.plan_class(cls.entry, cls.queries)
                    assert current is not None
                    marginal = grown.cost_ms - current.cost_ms
                    if marginal < best_marginal:
                        best_marginal = marginal
                        best_class = cls
                if best_class is None or (
                    d_entry is not None and d_cost < best_marginal
                ):
                    if d_entry is None:
                        raise ValueError(
                            f"no table can answer {query.display_name()}"
                        )
                    classes.append(_Class(entry=d_entry, queries=[query]))
                    used.add(d_entry.name)
                else:
                    best_class.queries.append(query)
            grow_span.set("n_classes", len(classes))
        self._count_class_opened(len(classes))
        with self.tracer.span("optimize.etplg.finalize"):
            plan = GlobalPlan(algorithm=self.name)
            for cls in classes:
                plan.classes.append(
                    build_plan_class(self.model, cls.entry, cls.queries)
                )
        plan.validate(queries)
        return plan
