"""Plan execution: lower each class onto the matching shared operator.

* all-hash class → shared scan hash star join (Section 3.1),
* all-index class → shared index join (Section 3.2),
* mixed class → shared scan for hash + index plans (Section 3.3),
* singleton classes → the plain single-query operators.

The executor reproduces the paper's measurement discipline: with
``cold=True`` (default) the buffer pool is flushed before each class, as the
paper "flushed both the Unix file system buffer and Paradise buffer pool
before running each test".  Each class's simulated cost (from the
:class:`~repro.storage.iostats.IOStats` clock) and real wall time are
reported separately.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..faults import InjectedFault, PartialResultError
from ..obs.analyze import OperatorActuals, q_error
from ..obs.metrics import default_registry
from ..schema.query import GroupByQuery
from ..storage.buffer import BufferPool
from ..storage.iostats import IOStats
from .operators.dag_join import SharedDagStarJoin
from .operators.hash_join import SharedScanHashStarJoin
from .operators.hybrid_join import SharedHybridStarJoin
from .operators.index_join import IndexStarJoin, SharedIndexStarJoin
from .operators.pipeline import ExecContext
from .operators.results import QueryResult
from .optimizer.plans import GlobalPlan, JoinMethod, PlanClass

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import Database


@dataclass
class ClassExecution:
    """The measured execution of one class."""

    plan_class: PlanClass
    results: List[QueryResult]
    sim: IOStats
    wall_s: float
    #: What the physical operator really did (rows scanned, probes issued,
    #: per-query routed tuples, …); None only for executions built by code
    #: predating plan accounting.
    actuals: Optional[OperatorActuals] = None

    @property
    def sim_ms(self) -> float:
        """Total simulated milliseconds (I/O + CPU)."""
        return self.sim.total_ms

    @property
    def est_ms(self) -> float:
        """The optimizer's estimated cost for this class."""
        return self.plan_class.est_cost_ms

    @property
    def q_error(self) -> float:
        """``max(est/actual, actual/est)`` of this class's cost estimate."""
        return q_error(self.est_ms, self.sim_ms)


@dataclass
class ClassFailure:
    """One class that failed mid-execution (fault isolation kept siblings).

    ``sim`` holds the cost charged *before* the failure — real work the
    clock already accounted — so reports stay truthful about spend even
    for aborted classes."""

    plan_class: PlanClass
    error: BaseException
    sim: IOStats
    wall_s: float

    @property
    def qids(self) -> List[int]:
        """The qids whose results this failure took down."""
        return [q.qid for q in self.plan_class.queries]

    @property
    def sim_ms(self) -> float:
        """Simulated milliseconds charged before the class aborted."""
        return self.sim.total_ms


@dataclass
class ExecutionReport:
    """The measured execution of a whole global plan.

    ``failures`` lists classes that aborted on an
    :class:`~repro.faults.InjectedFault`; their sibling classes'
    executions are unaffected and byte-identical to a fault-free run."""

    plan: GlobalPlan
    class_executions: List[ClassExecution] = field(default_factory=list)
    failures: List[ClassFailure] = field(default_factory=list)

    @property
    def results(self) -> Dict[int, QueryResult]:
        """Results keyed by ``query.qid``."""
        out: Dict[int, QueryResult] = {}
        for execution in self.class_executions:
            for result in execution.results:
                out[result.query.qid] = result
        return out

    @property
    def failed_qids(self) -> List[int]:
        """Sorted qids of every query whose class failed."""
        return sorted({qid for f in self.failures for qid in f.qids})

    def result_for(self, query: GroupByQuery) -> QueryResult:
        """The result of one submitted query, by its qid.

        Raises :class:`~repro.faults.PartialResultError` when the plan
        covered the query but its class failed mid-execution (the report is
        partial), and :class:`~repro.check.errors.PlanCoverageError` when
        the plan never covered it at all — both KeyError subclasses, so an
        empty or degenerate plan must not fail with a bare ``KeyError``.
        """
        results = self.results
        try:
            return results[query.qid]
        except KeyError:
            pass
        for failure in self.failures:
            if query.qid in failure.qids:
                raise PartialResultError(
                    f"no result for {query.display_name()} (qid "
                    f"{query.qid}): its class over {failure.plan_class.source!r}"
                    f" failed mid-execution ({failure.error}); "
                    f"{len(results)} sibling result(s) survived"
                ) from failure.error
        from ..check.errors import PlanCoverageError

        raise PlanCoverageError(
            f"no result for {query.display_name()} (qid {query.qid}): "
            f"the {self.plan.algorithm!r} plan placed it in no class "
            f"(covered qids: {sorted(results) or 'none'})"
        ) from None

    @property
    def sim_ms(self) -> float:
        """Total simulated milliseconds (I/O + CPU), including the partial
        cost charged by classes that later failed."""
        return sum(e.sim_ms for e in self.class_executions) + sum(
            f.sim_ms for f in self.failures
        )

    @property
    def sim_io_ms(self) -> float:
        """Simulated I/O milliseconds."""
        return sum(e.sim.io_ms for e in self.class_executions) + sum(
            f.sim.io_ms for f in self.failures
        )

    @property
    def sim_cpu_ms(self) -> float:
        """Simulated CPU milliseconds."""
        return sum(e.sim.cpu_ms for e in self.class_executions) + sum(
            f.sim.cpu_ms for f in self.failures
        )

    @property
    def wall_s(self) -> float:
        """Measured wall-clock seconds."""
        return sum(e.wall_s for e in self.class_executions) + sum(
            f.wall_s for f in self.failures
        )

    @property
    def est_ms(self) -> float:
        """The optimizer's estimated cost of the whole plan."""
        return self.plan.est_cost_ms

    @property
    def q_error(self) -> float:
        """Q-error of the whole plan's cost estimate."""
        return q_error(self.est_ms, self.sim_ms)

    def summary(self) -> str:
        """One-line summary for logs and console output."""
        failed = ""
        if self.failures:
            failed = (
                f", {len(self.failures)} class(es) FAILED "
                f"(qids {self.failed_qids})"
            )
        return (
            f"{self.plan.algorithm}: {self.plan.n_queries} queries, "
            f"{len(self.class_executions)} class(es), "
            f"sim {self.sim_ms:.1f} ms "
            f"(io {self.sim_io_ms:.1f} + cpu {self.sim_cpu_ms:.1f}), "
            f"wall {self.wall_s * 1000:.1f} ms{failed}"
        )

    def explain_analyze(self, schema, catalog) -> str:
        """EXPLAIN ANALYZE: each class's operator tree annotated with its
        estimated and *measured* cost — per class and per query — so the
        estimate/actual gap (Q-error) can be audited on a live plan."""
        from ..obs.analyze import account_execution
        from .explain import explain_class

        blocks = [self.summary()]
        for execution in self.class_executions:
            tree = explain_class(schema, catalog, execution.plan_class)
            accounting = account_execution(execution)
            est = accounting.est_ms
            actual = accounting.actual_ms
            gap = (actual / est - 1.0) * 100 if est else 0.0
            lines = [
                tree,
                f"   => est {est:.1f} sim-ms, actual {actual:.1f} "
                f"sim-ms ({gap:+.0f}%, q-error {accounting.q_error:.3f}), "
                f"wall {execution.wall_s * 1000:.1f} ms",
                f"   => actual io {accounting.actual_io_ms:.1f} + cpu "
                f"{accounting.actual_cpu_ms:.1f} sim-ms; "
                f"{accounting.seq_page_reads} seq / "
                f"{accounting.rand_page_reads} rand page read(s), "
                f"{accounting.buffer_hits} buffer hit(s)",
            ]
            actuals = accounting.actuals
            if actuals is not None:
                if actuals.rows_scanned:
                    lines.append(
                        f"   => scanned {actuals.rows_scanned} row(s) on "
                        f"{actuals.pages_scanned} page(s)"
                    )
                if actuals.probes_issued:
                    lines.append(
                        f"   => probed {actuals.probes_issued} row(s) via "
                        f"union bitmap (popcount "
                        f"{actuals.union_popcount})"
                    )
            for qa in accounting.queries:
                routed = (
                    f", routed {qa.tuples_routed}"
                    if qa.tuples_routed is not None
                    else ""
                )
                lines.append(
                    f"      {qa.label} [{qa.method}]: est standalone "
                    f"{qa.est_standalone_ms:.1f} / marginal "
                    f"{qa.est_marginal_ms:.1f} sim-ms; actual pipeline cpu "
                    f"{qa.actual_cpu_ms:.2f} sim-ms "
                    f"(rows {qa.rows_in} -> {qa.rows_passed}{routed}, "
                    f"{qa.n_groups} group(s))"
                )
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


def run_class_accounted(
    ctx: ExecContext, plan_class: PlanClass
) -> Tuple[List[QueryResult], OperatorActuals]:
    """Execute one class with the operator its method mix calls for,
    returning the results *and* the operator's measured actuals.

    Results are returned in the class's plan order.  When the context's
    tracer is live, the physical operator runs inside an
    ``operator.<kind>`` span whose cost-clock delta is exactly the class's
    charged work; the operator's actuals land in the span's ``actuals``
    attribute.
    """
    queries = plan_class.queries
    source = plan_class.source
    tracer = ctx.tracer
    if plan_class.has_derives:
        hash_queries = [
            p.query for p in plan_class.plans if p.method is JoinMethod.HASH
        ]
        index_queries = [
            p.query for p in plan_class.plans if p.method is JoinMethod.INDEX
        ]
        derives = [
            (step.intermediate, plan_class.derived_queries(step))
            for step in plan_class.derives
        ]
        with tracer.span(
            "operator.shared_dag",
            source=source,
            n_hash=len(hash_queries),
            n_index=len(index_queries),
            n_intermediates=len(derives),
            n_derived=sum(len(members) for _inter, members in derives),
        ) as span:
            operator = SharedDagStarJoin(
                ctx, source, hash_queries, index_queries, derives
            )
            by_qid = operator.run()
            results = [by_qid[q.qid] for q in queries]
    elif plan_class.is_pure_hash:
        with tracer.span(
            "operator.shared_scan_hash", source=source, n_queries=len(queries)
        ) as span:
            operator = SharedScanHashStarJoin(ctx, source, queries)
            results = operator.run()
    elif plan_class.is_pure_index and len(queries) == 1:
        with tracer.span(
            "operator.index_star", source=source, n_queries=1
        ) as span:
            operator = IndexStarJoin(ctx, source, queries[0])
            results = operator.run()
    elif plan_class.is_pure_index:
        with tracer.span(
            "operator.shared_index", source=source, n_queries=len(queries)
        ) as span:
            operator = SharedIndexStarJoin(ctx, source, queries)
            results = operator.run()
    else:
        hash_queries = [
            p.query for p in plan_class.plans if p.method is JoinMethod.HASH
        ]
        index_queries = [
            p.query for p in plan_class.plans if p.method is JoinMethod.INDEX
        ]
        with tracer.span(
            "operator.shared_hybrid",
            source=source,
            n_hash=len(hash_queries),
            n_index=len(index_queries),
        ) as span:
            operator = SharedHybridStarJoin(
                ctx, source, hash_queries, index_queries
            )
            by_qid = operator.run()
            results = [by_qid[q.qid] for q in queries]
    if tracer.enabled:
        span.set("actuals", operator.actuals.as_dict())
    return results, operator.actuals


def run_class(ctx: ExecContext, plan_class: PlanClass) -> List[QueryResult]:
    """Execute one class; results only (see :func:`run_class_accounted`)."""
    return run_class_accounted(ctx, plan_class)[0]


def _validate_paranoid(db: "Database", plan: GlobalPlan, tracer) -> None:
    """Paranoia pre-flight: structurally validate the plan before running.

    A structural violation is as much a wrong answer as a bad result, so
    it surfaces as :class:`~repro.check.errors.CorrectnessError` too.
    """
    from ..check.errors import CorrectnessError, PlanValidationError
    from ..check.validate import validate_global_plan

    with tracer.span(
        "check.validate", algorithm=plan.algorithm, n_queries=plan.n_queries
    ):
        try:
            validate_global_plan(db.schema, db.catalog, plan)
        except PlanValidationError as exc:
            raise CorrectnessError(
                f"global plan failed structural validation: {exc}", plan=plan
            ) from exc
    default_registry().counter(
        "check.plans_validated", "global plans structurally validated"
    ).inc()


def execute_plan(
    db: "Database",
    plan: GlobalPlan,
    cold: bool = True,
    paranoia: Optional[bool] = None,
) -> ExecutionReport:
    """Execute every class of ``plan``; measure each separately.

    ``paranoia`` (default: the database's :attr:`Database.paranoia` flag)
    validates the plan before execution and cross-checks every class's
    results against the brute-force reference evaluator.  Checking happens
    *outside* the measured sections, so paranoia never perturbs a class's
    reported simulated or wall cost.
    """
    if paranoia is None:
        paranoia = bool(getattr(db, "paranoia", False))
    report = ExecutionReport(plan=plan)
    ctx = db.ctx()
    metrics = default_registry()
    classes_counter = metrics.counter(
        "executor.classes_executed", "plan classes run to completion"
    )
    queries_counter = metrics.counter(
        "executor.queries_executed", "component queries answered"
    )
    with ctx.tracer.span(
        "execute.plan",
        algorithm=plan.algorithm,
        n_classes=len(plan.classes),
        n_queries=plan.n_queries,
        paranoia=paranoia,
    ):
        if paranoia:
            _validate_paranoid(db, plan, ctx.tracer)
        for plan_class in plan.classes:
            if cold:
                db.flush()
            failure: Optional[ClassFailure] = None
            with ctx.tracer.span(
                "execute.class",
                source=plan_class.source,
                n_queries=len(plan_class.queries),
                methods=[p.method.name for p in plan_class.plans],
            ) as span:
                before = db.stats.snapshot()
                started = time.perf_counter()
                try:
                    results, actuals = run_class_accounted(ctx, plan_class)
                except InjectedFault as exc:
                    # Fault isolation: this class is lost, siblings proceed.
                    wall_s = time.perf_counter() - started
                    delta = db.stats.delta_since(before)
                    failure = ClassFailure(
                        plan_class=plan_class,
                        error=exc,
                        sim=delta,
                        wall_s=wall_s,
                    )
                    span.set("failed", True)
                    span.set("error", str(exc))
                else:
                    wall_s = time.perf_counter() - started
                    delta = db.stats.delta_since(before)
                    span.set("sim_ms", round(delta.total_ms, 3))
                    span.set("est_ms", round(plan_class.est_cost_ms, 3))
            if failure is not None:
                with ctx.tracer.span(
                    "fault.class_failure",
                    source=plan_class.source,
                    n_queries=len(plan_class.queries),
                    error=str(failure.error),
                ):
                    pass
                metrics.counter(
                    "executor.class_failures",
                    "plan classes aborted by an injected fault",
                ).inc()
                report.failures.append(failure)
                if cold:
                    # Drop whatever the aborted class admitted so the next
                    # class still starts from an empty pool.
                    db.flush()
                continue
            classes_counter.inc()
            queries_counter.inc(len(plan_class.queries))
            if paranoia:
                from ..check.paranoia import check_results

                with ctx.tracer.span(
                    "check.class",
                    source=plan_class.source,
                    n_results=len(results),
                ) as check_span:
                    checked = check_results(db, results, plan=plan)
                    check_span.set("n_checked", checked)
            report.class_executions.append(
                ClassExecution(
                    plan_class=plan_class,
                    results=results,
                    sim=delta,
                    wall_s=wall_s,
                    actuals=actuals,
                )
            )
    return report


def _isolated_context(db: "Database") -> ExecContext:
    """A private cold ExecContext: fresh pool + clock, shared read-only
    catalog/schema, and the database's armed fault plan (if any).

    The context starts with the NULL tracer; the parallel/sharded
    executors bind the live tracer to the context's private stats
    (``tracer.bound(ctx.stats)``) before handing it to a worker, so
    operator spans charge the task's own cost clock."""
    stats = IOStats(rates=db.stats.rates)
    pool = BufferPool(stats, capacity_pages=db.pool.capacity_pages)
    faults = getattr(db, "faults", None)
    pool.faults = faults
    return ExecContext(
        schema=db.schema,
        catalog=db.catalog,
        pool=pool,
        stats=stats,
        dim_tables=db.dimension_tables or None,
        faults=faults,
        kernels=getattr(db, "kernels", True),
    )


def run_class_isolated(db: "Database", plan_class: PlanClass) -> ClassExecution:
    """Execute one class in a private cold context: its own buffer pool and
    its own cost clock, sharing only the (read-only) catalog and schema.

    This is the unit of work the parallel class executor hands to a thread:
    because a fresh pool is indistinguishable from a just-flushed shared
    pool, the class's results *and* its simulated cost are byte-identical
    to what ``execute_plan(..., cold=True)`` measures serially — worker
    interleaving cannot perturb either.  Span stacks are per thread, so
    the parallel executor *does* thread the tracer through: it pre-creates
    an ``execute.class`` span per task with an explicit ``parent=`` link
    (deterministic plan order) and a ``stats=`` binding to the task's
    private clock; this standalone helper keeps the NULL tracer.

    An :class:`~repro.faults.InjectedFault` propagates to the caller; the
    parallel executor wraps this in :func:`_run_class_guarded` to convert
    it into a :class:`ClassFailure` instead.
    """
    ctx = _isolated_context(db)
    started = time.perf_counter()
    results, actuals = run_class_accounted(ctx, plan_class)
    wall_s = time.perf_counter() - started
    return ClassExecution(
        plan_class=plan_class,
        results=results,
        sim=ctx.stats,
        wall_s=wall_s,
        actuals=actuals,
    )


def _run_class_guarded(
    db: "Database",
    plan_class: PlanClass,
    ctx: Optional[ExecContext] = None,
    span=None,
) -> "ClassExecution | ClassFailure":
    """Like :func:`run_class_isolated`, but an injected fault becomes a
    :class:`ClassFailure` carrying the cost charged before the abort.

    ``ctx`` and ``span`` let the parallel executor pre-create the task's
    isolated context and its ``execute.class`` span on the scheduling
    thread (explicit cross-thread parent handoff); the worker enters the
    span here, on its own thread-local stack.
    """
    if ctx is None:
        ctx = _isolated_context(db)
    if span is None:
        span = ctx.tracer.span("execute.class", source=plan_class.source)
    with span:
        started = time.perf_counter()
        try:
            results, actuals = run_class_accounted(ctx, plan_class)
        except InjectedFault as exc:
            span.set("failed", True)
            span.set("error", str(exc))
            return ClassFailure(
                plan_class=plan_class,
                error=exc,
                sim=ctx.stats,
                wall_s=time.perf_counter() - started,
            )
        span.set("sim_ms", round(ctx.stats.total_ms, 3))
        span.set("est_ms", round(plan_class.est_cost_ms, 3))
        return ClassExecution(
            plan_class=plan_class,
            results=results,
            sim=ctx.stats,
            wall_s=time.perf_counter() - started,
            actuals=actuals,
        )


def execute_plan_parallel(
    db: "Database",
    plan: GlobalPlan,
    n_workers: int = 4,
    paranoia: Optional[bool] = None,
) -> ExecutionReport:
    """Execute a global plan's independent classes concurrently.

    Classes of a global plan share nothing at run time (each reads one
    source table through its own operators), so they can run on a thread
    pool.  Every class gets an isolated cold context
    (:func:`run_class_isolated`); finished per-class clocks are merged
    into the database's shared clock under its lock, and the report lists
    classes in plan order — so results, per-class simulated costs, and
    their sum are all identical to the serial cold
    :func:`execute_plan`, independent of scheduling.

    Paranoia checks (structural validation plus the differential
    cross-check of every result) run on the calling thread, outside the
    measured sections, exactly as in the serial executor.
    """
    if paranoia is None:
        paranoia = bool(getattr(db, "paranoia", False))
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive (got {n_workers})")
    report = ExecutionReport(plan=plan)
    metrics = default_registry()
    classes_counter = metrics.counter(
        "executor.classes_executed", "plan classes run to completion"
    )
    queries_counter = metrics.counter(
        "executor.queries_executed", "component queries answered"
    )
    with db.tracer.span(
        "execute.plan",
        algorithm=plan.algorithm,
        n_classes=len(plan.classes),
        n_queries=plan.n_queries,
        paranoia=paranoia,
        parallel=True,
        n_workers=n_workers,
    ) as plan_span:
        if paranoia:
            _validate_paranoid(db, plan, db.tracer)
        classes = list(plan.classes)
        if not classes:
            return report
        # Pre-create each task's isolated context and its span on this
        # thread, in plan order: the explicit parent= link pins sibling
        # order deterministically, and the stats= binding makes each span's
        # sim delta the task's private clock (the shared clock is merged
        # concurrently by other workers).  With tracing off this costs one
        # no-op span per class.
        traced = db.tracer.enabled
        tasks = []
        for plan_class in classes:
            ctx = _isolated_context(db)
            if traced:
                ctx.tracer = db.tracer.bound(ctx.stats)
            span = db.tracer.span(
                "execute.class",
                parent=plan_span,
                stats=ctx.stats,
                source=plan_class.source,
                n_queries=len(plan_class.queries),
                methods=[p.method.name for p in plan_class.plans],
            )
            tasks.append((plan_class, ctx, span))
        if len(classes) == 1 or n_workers == 1:
            outcomes = [
                _run_class_guarded(db, pc, ctx, span)
                for pc, ctx, span in tasks
            ]
        else:
            with ThreadPoolExecutor(
                max_workers=min(n_workers, len(classes))
            ) as workers:
                outcomes = list(
                    workers.map(
                        lambda task: _run_class_guarded(db, *task), tasks
                    )
                )
        for outcome in outcomes:
            db.stats.merge_from(outcome.sim)
            if isinstance(outcome, ClassFailure):
                with db.tracer.span(
                    "fault.class_failure",
                    source=outcome.plan_class.source,
                    n_queries=len(outcome.plan_class.queries),
                    error=str(outcome.error),
                ):
                    pass
                metrics.counter(
                    "executor.class_failures",
                    "plan classes aborted by an injected fault",
                ).inc()
                report.failures.append(outcome)
                continue
            classes_counter.inc()
            queries_counter.inc(len(outcome.plan_class.queries))
            if paranoia:
                from ..check.paranoia import check_results

                with db.tracer.span(
                    "check.class",
                    source=outcome.plan_class.source,
                    n_results=len(outcome.results),
                ) as check_span:
                    checked = check_results(db, outcome.results, plan=plan)
                    check_span.set("n_checked", checked)
            report.class_executions.append(outcome)
    return report
