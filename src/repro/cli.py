"""Command-line interface.

Usage (installed as a module)::

    python -m repro info
    python -m repro run "{A''.A1.CHILDREN} on COLUMNS CONTEXT ABCD FILTER (D.DD1)"
    python -m repro compare --tests test4,test7
    python -m repro figures
    python -m repro serve --simulate --clients 32 --window 25
    python -m repro select-views --budget 4

Every subcommand builds the paper's ABCD database (scaled by ``--scale``)
unless documented otherwise.

Exit codes are uniform across subcommands: ``0`` success, ``1`` a run
that completed but failed its check (benchmark regression, correctness
divergence, simulation shortfall), ``2`` a usage error (argparse uses the
same convention for unparseable arguments).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .bench.harness import (
    run_algorithm_comparison,
    run_test1_shared_scan,
    run_test2_shared_index,
    run_test3_hybrid,
)
from .bench.reporting import format_table
from .engine.view_selection import greedy_select_views, materialize_selection
from .mdx import translate_mdx
from .workload.paper_queries import PAPER_TESTS, paper_queries
from .workload.paper_schema import build_paper_database

from .core.optimizer import OPTIMIZERS

ALGORITHMS = tuple(OPTIMIZERS)


class CliError(Exception):
    """A usage error: printed to stderr, exits with code 2."""


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="fraction of the paper's 2M-row base table (default 0.01)",
    )
    parser.add_argument(
        "--tuple-path",
        action="store_true",
        help="execute on the legacy per-tuple operators instead of the "
        "default vectorized columnar kernels (same results and simulated "
        "costs, slower wall clock; see docs/performance.md)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="run under a fitted calibration profile (see `repro calibrate "
        "--fit`): its cost rates replace the hand-set defaults for both "
        "planning and the simulated clock; for `calibrate --fit` this is "
        "instead the path the fitted profile is written to",
    )


def _load_profile(path: str):
    """Load a calibration profile or die with a usage error naming it."""
    from .calibrate.profile import CalibrationProfile

    try:
        return CalibrationProfile.load(path)
    except ValueError as exc:
        raise CliError(str(exc)) from exc


def _build_db(args: argparse.Namespace):
    """The paper database per the common flags (--scale, --tuple-path,
    --profile)."""
    db = build_paper_database(scale=args.scale, kernels=not args.tuple_path)
    if getattr(args, "profile", None):
        db.apply_profile(_load_profile(args.profile))
    return db


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Simultaneous Optimization and "
        "Evaluation of Multiple Dimensional Queries' (SIGMOD 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="build the paper database and show it")
    _add_scale(info)
    info.add_argument(
        "--save", metavar="DIR",
        help="persist the built database to a directory",
    )

    run = sub.add_parser("run", help="optimize + execute one MDX expression")
    _add_scale(run)
    run.add_argument("mdx", nargs="?", help="MDX text (or use --file)")
    run.add_argument("--file", help="read the MDX expression from a file")
    run.add_argument(
        "--database", metavar="DIR",
        help="load a saved database instead of building the paper's",
    )
    run.add_argument(
        "--algorithm", default="gg", choices=ALGORITHMS,
        help="optimizer (default gg)",
    )
    run.add_argument(
        "--explain", action="store_true",
        help="print the global plan before executing",
    )
    run.add_argument(
        "--analyze", action="store_true",
        help="print EXPLAIN ANALYZE (estimated vs measured cost per class) "
        "after executing",
    )
    run.add_argument(
        "--trace", metavar="FILE",
        help="trace the batch and write the span tree as JSON "
        "(FILE ending in .chrome.json gets Chrome-trace events instead)",
    )
    run.add_argument(
        "--limit", type=int, default=10,
        help="max result rows to print per query (default 10)",
    )
    run.add_argument(
        "--pivot", action="store_true",
        help="lay the results out on the MDX axes (grid per PAGES member)",
    )
    run.add_argument(
        "--paranoia", action="store_true",
        help="differentially validate the plan and every result against "
        "the brute-force reference evaluator (slow; fails loudly on any "
        "divergence)",
    )

    compare = sub.add_parser(
        "compare", help="Table 2: compare the optimization algorithms"
    )
    _add_scale(compare)
    compare.add_argument(
        "--tests",
        default=",".join(PAPER_TESTS),
        help="comma-separated subset of: " + ", ".join(PAPER_TESTS),
    )
    compare.add_argument(
        "--paranoia", action="store_true",
        help="differentially validate every algorithm's plan and results "
        "against the brute-force reference evaluator (slow)",
    )

    figures = sub.add_parser(
        "figures", help="Figures 10-12: the three shared operators"
    )
    _add_scale(figures)

    explain = sub.add_parser(
        "explain",
        help="show the chosen plan for an MDX expression "
        "(--analyze also executes it and renders est-vs-actual per class)",
    )
    _add_scale(explain)
    explain.add_argument("mdx", nargs="?", help="MDX text (or use --file)")
    explain.add_argument("--file", help="read the MDX expression from a file")
    explain.add_argument(
        "--algorithm", default="gg", choices=ALGORITHMS,
        help="optimizer (default gg)",
    )
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the plan and annotate every class and component query "
        "with estimated vs measured cost (EXPLAIN ANALYZE)",
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="cost-model calibration: run Tests 1-7 under every algorithm, "
        "report per-class Q-error quantiles and plan misrankings",
    )
    _add_scale(calibrate)
    calibrate.add_argument(
        "--tests", default=None,
        help="comma-separated subset of: " + ", ".join(PAPER_TESTS),
    )
    calibrate.add_argument(
        "--fit", action="store_true",
        help="fit CostRates coefficients from the sweep's recorded actuals "
        "(deterministic least squares, see docs/cost_model.md); with "
        "--profile FILE the fitted profile is written there",
    )
    calibrate.add_argument(
        "--report", action="store_true",
        help="with --fit: print the full before/after comparison "
        "(per-algorithm plan quality, misrankings under both rate sets) "
        "instead of just the fitted-rates summary",
    )
    calibrate.add_argument(
        "--label", default="paper",
        help="label stamped into the fitted profile (default 'paper')",
    )

    bench = sub.add_parser(
        "bench",
        help="persistent benchmark telemetry: --record writes "
        "BENCH_<label>.json; --compare gates it against a baseline "
        "(exit 1 on regression)",
    )
    _add_scale(bench)
    bench.add_argument(
        "--record", action="store_true",
        help="run the paper workload and persist a structured run record",
    )
    bench.add_argument(
        "--compare", action="store_true",
        help="compare the latest record against --baseline (or the "
        "default record path) and exit nonzero on any regression",
    )
    bench.add_argument(
        "--label", default="paper",
        help="record label; the default path is BENCH_<label>.json "
        "(default 'paper')",
    )
    bench.add_argument(
        "--baseline", metavar="FILE",
        help="baseline record to compare against "
        "(default: BENCH_<label>.json)",
    )
    bench.add_argument(
        "--output", metavar="FILE",
        help="where --record writes the record "
        "(default: BENCH_<label>.json in the current directory)",
    )
    bench.add_argument(
        "--tests", default=None,
        help="restrict the calibration sweep to a comma-separated subset "
        "of: " + ", ".join(PAPER_TESTS),
    )
    bench.add_argument(
        "--no-figures", action="store_true",
        help="skip the Figures 10-12 sharing sweeps (faster)",
    )
    bench.add_argument(
        "--leaderboard", action="store_true",
        help="render the committed BENCH_*.json records as a markdown "
        "leaderboard (standalone: no database is built)",
    )
    bench.add_argument(
        "--dir", metavar="DIR", default=None,
        help="directory --leaderboard scans for BENCH_*.json "
        "(default: current directory)",
    )

    serve = sub.add_parser(
        "serve",
        help="concurrent query service: micro-batch overlapping requests "
        "from simulated clients and report the sharing win",
        description="Drive the repro.serve subsystem under simulated "
        "concurrent load: N client threads submit overlapping MDX-derived "
        "query batches, the scheduler coalesces everything inside the "
        "batching window into one multi-query plan, and the report "
        "compares the batched simulated cost against serving each request "
        "alone.  Exits 1 if batching failed to beat serial execution.",
    )
    _add_scale(serve)
    serve.add_argument(
        "--simulate", action="store_true",
        help="run the simulated-load harness (required; a network front "
        "end is out of scope)",
    )
    serve.add_argument(
        "--clients", type=int, default=32,
        help="number of concurrent simulated clients (default 32)",
    )
    serve.add_argument(
        "--requests", type=int, default=3,
        help="requests each client issues (default 3)",
    )
    serve.add_argument(
        "--window", type=float, default=25.0, metavar="MS",
        help="micro-batching window in milliseconds (default 25)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="threads executing a merged plan's classes (default 4)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="scatter-gather execution over N hash partitions of the "
        "data (default 1 = unsharded); results are verified identical "
        "to the serial baseline",
    )
    serve.add_argument(
        "--shard-dim", default=None, metavar="DIM",
        help="dimension whose key partitions the data across shards "
        "(default: the schema's first dimension)",
    )
    serve.add_argument(
        "--overlap", type=float, default=0.75,
        help="probability a request comes from the shared expression pool "
        "(default 0.75)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (default 0)",
    )
    serve.add_argument(
        "--algorithm", default="gg", choices=ALGORITHMS,
        help="optimizer for each micro-batch (default gg)",
    )
    serve.add_argument(
        "--cache", action="store_true",
        help="attach the semantic result cache, so repeated expressions "
        "bypass planning entirely",
    )
    serve.add_argument(
        "--arrivals", action="store_true",
        help="let clients race the running scheduler instead of "
        "pre-loading the burst (latency depends on thread timing)",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip cross-checking every response against serial execution",
    )
    serve.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="deterministic fault plan armed during the service run, e.g. "
        "'storage.scan:table=ABCD,nth=1;index.lookup:p=0.05' "
        "(see docs/resilience.md for the grammar)",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for probabilistic fault triggers (default 0)",
    )
    serve.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="max execution attempts per micro-batch before degraded "
        "replanning (default 3)",
    )
    serve.add_argument(
        "--backoff", type=float, default=50.0, metavar="MS",
        help="base retry backoff on the simulated clock (default 50)",
    )
    serve.add_argument(
        "--no-degrade", action="store_true",
        help="disable per-query raw-table fallback; still-failing queries "
        "are quarantined instead",
    )
    serve.add_argument(
        "--flight-recorder", metavar="FILE", default=None,
        help="dump the service's flight recorder (the last N batch traces "
        "plus fault/retry/quarantine events) to FILE as JSON after the "
        "run; the same path receives an automatic dump if a batch fails "
        "wholesale (see docs/observability.md)",
    )
    serve.add_argument(
        "--recorder-size", type=int, default=32, metavar="N",
        help="flight-recorder ring capacity in entries (default 32; "
        "0 disables recording and per-batch tracing)",
    )
    serve.add_argument(
        "--stats-json", metavar="FILE", default=None,
        help="write the full metrics registry (serve.stage.* latency "
        "breakdowns included) as a versioned JSON snapshot after the run",
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="run a small workload and expose the metrics registry as "
        "Prometheus text or a JSON snapshot",
        description="Execute one paper test's queries to populate the "
        "metrics registry, then render it in the Prometheus text "
        "exposition format (default) or as the versioned JSON snapshot.  "
        "Either way the output is parsed back and checked against the "
        "registry before the command exits (exit 1 on disagreement).",
    )
    _add_scale(metrics_cmd)
    metrics_cmd.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="exposition format (default prometheus)",
    )
    metrics_cmd.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the exposition to a file instead of stdout",
    )
    metrics_cmd.add_argument(
        "--test", default="test4",
        help="paper test whose queries populate the registry "
        "(default test4); one of: " + ", ".join(PAPER_TESTS),
    )
    metrics_cmd.add_argument(
        "--algorithm", default="gg", choices=ALGORITHMS,
        help="optimizer for the workload (default gg)",
    )

    report_cmd = sub.add_parser(
        "report", help="run every paper experiment; emit a markdown report"
    )
    _add_scale(report_cmd)
    report_cmd.add_argument(
        "--output", metavar="FILE", help="write the report to a file"
    )

    select = sub.add_parser(
        "select-views", help="greedy (HRU) materialized-view selection"
    )
    _add_scale(select)
    select.add_argument(
        "--budget", type=int, default=5,
        help="number of views to select (default 5)",
    )
    select.add_argument(
        "--materialize", action="store_true",
        help="also materialize the selection and show the resulting catalog",
    )
    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    db = _build_db(args)
    print(f"schema: {db.schema.name}; base rows: "
          f"{db.catalog.get('ABCD').n_rows}")
    rows = []
    for name, n_rows, n_pages in db.table_report():
        entry = db.catalog.get(name)
        indexed = ", ".join(
            f"{db.schema.dimensions[d].name}@{lv}"
            for d, lv in sorted(entry.indexes)
        )
        rows.append((name, n_rows, n_pages, indexed or "-"))
    print(format_table(["table", "rows", "pages", "indexes"], rows))
    if args.save:
        from .engine.persist import save_database

        root = save_database(db, args.save)
        print(f"\nsaved to {root}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.file:
        with open(args.file) as handle:
            mdx = handle.read()
    elif args.mdx:
        mdx = args.mdx
    else:
        raise CliError("provide MDX text or --file")
    if args.database:
        from .engine.persist import load_database

        db = load_database(args.database)
        db.kernels = not args.tuple_path
    else:
        db = _build_db(args)
    db.paranoia = args.paranoia
    if args.paranoia:
        print("paranoia: validating plans and cross-checking every result "
              "against the reference evaluator")
    if args.pivot:
        from .mdx.pivot import evaluate_pivot

        pivot = evaluate_pivot(db, mdx, algorithm=args.algorithm)
        print(pivot.render())
        print(f"\n({len(pivot.queries)} component query(ies), "
              f"{pivot.sim_ms:.1f} sim-ms)")
        return 0
    from contextlib import nullcontext

    with db.trace() if args.trace else nullcontext():
        queries = translate_mdx(db.schema, mdx, tracer=db.tracer)
        print(f"{len(queries)} component group-by query(ies):")
        for query in queries:
            print("  " + query.describe(db.schema))
        plan = db.optimize(queries, args.algorithm)
        if args.explain:
            from .core.explain import explain_plan

            print()
            print(explain_plan(db.schema, db.catalog, plan))
            if args.algorithm == "dag":
                from .dag import render_dag

                rendered = render_dag(plan)
                if rendered:
                    print()
                    print(rendered)
        report = db.execute(plan)
    if args.trace:
        from .obs.export import write_chrome_trace, write_trace

        if args.trace.endswith(".chrome.json"):
            write_chrome_trace(db.last_trace, args.trace)
        else:
            write_trace(db.last_trace, args.trace)
        print(f"\ntrace written to {args.trace}")
    print()
    print(report.summary())
    if args.analyze:
        print()
        print(report.explain_analyze(db.schema, db.catalog))
    for query in queries:
        result = report.result_for(query)
        print(f"\n{query.display_name()}: {result.n_groups} group(s)")
        for names, value in result.to_named_rows(db.schema)[: args.limit]:
            print(f"  {', '.join(names):40s} {value:14.2f}")
        if result.n_groups > args.limit:
            print(f"  ... {result.n_groups - args.limit} more")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    names = [t.strip() for t in args.tests.split(",") if t.strip()]
    unknown = [t for t in names if t not in PAPER_TESTS]
    if unknown:
        raise CliError(
            f"unknown tests {unknown}; choose from {list(PAPER_TESTS)}"
        )
    db = _build_db(args)
    db.paranoia = args.paranoia
    if args.paranoia:
        print("paranoia: validating plans and cross-checking every result "
              "against the reference evaluator")
    qs = paper_queries(db.schema)
    for test_name in names:
        ids = PAPER_TESTS[test_name]
        rows = run_algorithm_comparison(
            db, [qs[i] for i in ids], ALGORITHMS
        )
        print()
        print(
            format_table(
                ["algorithm", "est sim-ms", "exec sim-ms", "classes", "plan"],
                [
                    (r.algorithm, r.est_ms, r.sim_ms, r.n_classes, r.plan)
                    for r in rows
                ],
                title=f"{test_name} (Queries {ids})",
            )
        )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    db = _build_db(args)
    qs = paper_queries(db.schema)
    for title, rows in [
        (
            "Figure 10 - shared scan (Q1-4 hash on ABCD)",
            run_test1_shared_scan(db, [qs[i] for i in (1, 2, 3, 4)]),
        ),
        (
            "Figure 11 - shared index (Q5,8,6,7 on A'B'C'D)",
            run_test2_shared_index(db, [qs[i] for i in (5, 8, 6, 7)]),
        ),
        (
            "Figure 12 - hybrid (Q3 hash + Q5,6,7 index on A'B'C'D)",
            run_test3_hybrid(db, [qs[3]], [qs[5], qs[6], qs[7]]),
        ),
    ]:
        print()
        print(
            format_table(
                ["queries", "separate sim-ms", "shared sim-ms", "speedup"],
                [
                    (r.n_queries, r.separate_ms, r.shared_ms,
                     f"{r.speedup:.2f}x")
                    for r in rows
                ],
                title=title,
            )
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.file:
        with open(args.file) as handle:
            mdx = handle.read()
    elif args.mdx:
        mdx = args.mdx
    else:
        raise CliError("provide MDX text or --file")
    from .core.explain import explain_plan

    db = _build_db(args)
    queries = translate_mdx(db.schema, mdx)
    plan = db.optimize(queries, args.algorithm)
    print(explain_plan(db.schema, db.catalog, plan))
    if args.algorithm == "dag":
        from .dag import render_dag

        rendered = render_dag(plan)
        if rendered:
            print()
            print(rendered)
    if args.analyze:
        report = db.execute(plan)
        print()
        print(report.explain_analyze(db.schema, db.catalog))
    return 0


def _parse_tests(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    names = [t.strip() for t in spec.split(",") if t.strip()]
    unknown = [t for t in names if t not in PAPER_TESTS]
    if unknown:
        raise CliError(
            f"unknown tests {unknown}; choose from {list(PAPER_TESTS)}"
        )
    return names


def _cmd_serve(args: argparse.Namespace) -> int:
    from .engine.result_cache import attach_cache
    from .serve import SimulationConfig, run_simulation

    if not args.simulate:
        raise CliError("pass --simulate (the only serve mode available)")
    if args.clients <= 0 or args.requests <= 0:
        raise CliError("--clients and --requests must be positive")
    if args.retries < 1:
        raise CliError("--retries must be >= 1")
    if args.shards < 1:
        raise CliError("--shards must be >= 1")
    if args.recorder_size < 0:
        raise CliError("--recorder-size must be >= 0")
    if args.flight_recorder and args.recorder_size == 0:
        raise CliError(
            "--flight-recorder needs a nonzero --recorder-size "
            "(0 disables recording)"
        )
    fault_plan = None
    if args.faults:
        from .faults import parse_fault_plan

        try:
            fault_plan = parse_fault_plan(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            raise CliError(f"bad --faults spec: {exc}") from exc
    db = _build_db(args)
    if args.shard_dim is not None and args.shard_dim not in [
        dim.name for dim in db.schema.dimensions
    ]:
        raise CliError(
            f"unknown --shard-dim {args.shard_dim!r}; choose from "
            f"{[dim.name for dim in db.schema.dimensions]}"
        )
    if args.cache:
        attach_cache(db)
    config = SimulationConfig(
        n_clients=args.clients,
        requests_per_client=args.requests,
        window_ms=args.window,
        algorithm=args.algorithm,
        seed=args.seed,
        overlap=args.overlap,
        n_workers=args.workers,
        preload=not args.arrivals,
        verify=not args.no_verify,
        faults=fault_plan,
        max_attempts=args.retries,
        backoff_base_ms=args.backoff,
        degrade=not args.no_degrade,
        n_shards=args.shards,
        shard_dim=args.shard_dim,
        flight_recorder=args.recorder_size,
        flight_recorder_path=args.flight_recorder,
    )
    print(
        f"simulating {config.n_clients} client(s) x "
        f"{config.requests_per_client} request(s), window "
        f"{config.window_ms:g} ms, {config.n_workers} worker(s), "
        f"algorithm {config.algorithm}"
        + (f", {config.n_shards} shard(s)" if config.n_shards > 1 else "")
        + (" (result cache attached)" if args.cache else "")
        + (f" (faults armed: {fault_plan.describe()})" if fault_plan else "")
    )
    report = run_simulation(db, config)
    print()
    print(report.render())
    if args.flight_recorder and report.recorder is not None:
        path = report.recorder.dump(args.flight_recorder)
        print(
            f"\nflight recorder ({len(report.recorder)} entry(ies), "
            f"{report.recorder.n_recorded} recorded) -> {path}"
        )
    if args.stats_json:
        from .obs.expose import write_metrics_json

        print(f"metrics snapshot -> {write_metrics_json(args.stats_json)}")
    if (
        fault_plan is None
        and args.shards == 1
        and report.batched_sim_ms >= report.serial_sim_ms
    ):
        # Under injected faults the batched cost legitimately includes
        # retries and degraded replans; under sharding, every shard pays
        # its own dimension hash builds (the price of the parallelism).
        # The sharing gate applies only to the plain batched path.
        print(
            "\nbatched execution did not beat serial execution; widen the "
            "window or raise --overlap",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs.expose import (
        metrics_snapshot,
        parse_prometheus,
        render_prometheus,
        snapshot_agrees,
    )
    from .obs.metrics import default_registry

    if args.test not in PAPER_TESTS:
        raise CliError(
            f"unknown test {args.test!r}; choose from {list(PAPER_TESTS)}"
        )
    db = _build_db(args)
    qs = paper_queries(db.schema)
    queries = [qs[i] for i in PAPER_TESTS[args.test]]
    plan = db.optimize(queries, args.algorithm)
    db.execute(plan)

    registry = default_registry()
    flat = registry.as_dict()
    if args.format == "json":
        snapshot = metrics_snapshot(registry)
        if not snapshot_agrees(snapshot, flat):
            print(
                "error: JSON snapshot disagrees with the registry dump",
                file=sys.stderr,
            )
            return 1
        text = json.dumps(snapshot, indent=2, allow_nan=False) + "\n"
    else:
        text = render_prometheus(registry)
        parsed = parse_prometheus(text)  # raises ValueError on bad lines
        from .obs.expose import sanitize_name

        missing = {
            sanitize_name(name) for name in flat
        } - set(parsed)
        if missing:
            print(
                f"error: exposition lost metric(s): {sorted(missing)}",
                file=sys.stderr,
            )
            return 1
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(
            f"{len(flat)} metric(s) ({args.format}) -> {args.output}"
        )
    else:
        print(text, end="")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .obs.analyze import run_calibration

    if args.report and not args.fit:
        raise CliError("--report requires --fit")
    if args.fit:
        from .calibrate import fit_database

        # --profile names the OUTPUT here, so build the database on its
        # hand-set default rates rather than loading the file.
        db = build_paper_database(
            scale=args.scale, kernels=not args.tuple_path
        )
        outcome = fit_database(
            db,
            tests=_parse_tests(args.tests),
            label=args.label,
            scale=args.scale,
        )
        print(
            outcome.render_report() if args.report
            else outcome.render_summary()
        )
        if args.profile:
            path = outcome.profile.save(args.profile)
            print(f"\ncalibration profile '{args.label}' -> {path}")
        return 0
    db = _build_db(args)
    report = run_calibration(db, tests=_parse_tests(args.tests))
    print(report.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.history import (
        RunRecord,
        compare_records,
        default_record_path,
        record_run,
    )

    if args.leaderboard:
        from .bench.leaderboard import load_records, render_leaderboard

        if args.record or args.compare:
            raise CliError(
                "--leaderboard renders committed records and cannot be "
                "combined with --record/--compare"
            )
        try:
            records = load_records(args.dir)
        except ValueError as exc:  # includes json.JSONDecodeError
            raise CliError(f"unreadable benchmark record: {exc}") from exc
        if not records:
            where = args.dir or "."
            raise CliError(
                f"no BENCH_*.json records in {where}; record one first "
                f"with `repro bench --record`"
            )
        table = render_leaderboard(records)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(table + "\n")
            print(f"leaderboard ({len(records)} record(s)) -> {args.output}")
        else:
            print(table)
        return 0
    if not args.record and not args.compare:
        raise CliError("pass --record, --compare, and/or --leaderboard")
    default_path = default_record_path(args.label)
    baseline = None
    if args.compare:
        # Load before --record overwrites the default path, so a combined
        # --record --compare gates against the *previous* record.
        baseline_path = args.baseline or default_path
        try:
            baseline = RunRecord.load(baseline_path)
        except FileNotFoundError:
            raise CliError(
                f"no baseline at {baseline_path}; record one first "
                f"with `repro bench --record`"
            ) from None
        except ValueError as exc:  # includes json.JSONDecodeError
            raise CliError(
                f"baseline {baseline_path} is not a readable benchmark "
                f"record: {exc}"
            ) from exc
    latest = record_run(
        label=args.label,
        scale=args.scale,
        tests=_parse_tests(args.tests),
        figures=not args.no_figures,
        kernels=not args.tuple_path,
        profile=_load_profile(args.profile) if args.profile else None,
    )
    if args.record:
        path = args.output or default_path
        latest.save(path)
        print(f"recorded benchmark run '{args.label}' -> {path}")
    if args.compare:
        print(f"comparing against baseline {baseline_path} "
              f"(recorded {baseline.created_at or 'unknown'})")
        result = compare_records(latest, baseline)
        if result.fingerprint_mismatch is not None:
            # A baseline from a different schema/scale/rates is a usage
            # error, not a regression: exit 2, like any other bad input.
            raise CliError(
                f"baseline {baseline_path} is incomparable: "
                f"{result.fingerprint_mismatch}"
            )
        print(result.render())
        if not result.passed:
            return 1
    return 0


def _cmd_select_views(args: argparse.Namespace) -> int:
    db = _build_db(args)
    n_base = db.catalog.get("ABCD").n_rows
    selection = greedy_select_views(db.schema, n_base, n_views=args.budget)
    print(
        format_table(
            ["step", "view", "est rows", "benefit (rows saved)"],
            [
                (i + 1, step.view.name(db.schema), step.estimated_rows,
                 step.benefit)
                for i, step in enumerate(selection.steps)
            ],
            title=f"Greedy view selection (budget {args.budget}, "
            f"base {n_base} rows)",
        )
    )
    if args.materialize:
        created = materialize_selection(db, selection)
        print(f"\nmaterialized: {created}")
        print(format_table(
            ["table", "rows", "pages"], db.table_report()
        ))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.paper_report import generate_report

    text = generate_report(
        scale=args.scale, output=args.output, kernels=not args.tuple_path
    )
    if args.output:
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figures": _cmd_figures,
    "explain": _cmd_explain,
    "calibrate": _cmd_calibrate,
    "metrics": _cmd_metrics,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "select-views": _cmd_select_views,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 success, 1 failed
    check, 2 usage error)."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
