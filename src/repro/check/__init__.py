"""repro.check — the differential correctness harness.

The paper's sharing claim is an *exactness* claim: the shared operators
must produce, for every component query, precisely the answer the
single-query plan would.  This package is the oracle asserting it:

* :mod:`repro.check.reference` — ground truth by naive tuple-at-a-time
  scan of the raw fact table (no sharing, no indexes, no views);
* :mod:`repro.check.validate` — structural validation of a global plan
  (coverage, lattice ancestry, method mix) before it runs;
* :mod:`repro.check.paranoia` — group-for-group cross-checking of executed
  results and served cache hits against the reference.

Turn it on end to end with ``Database(schema, paranoia=True)`` (or set
``db.paranoia = True``, or pass ``--paranoia`` on the CLI): every plan is
validated before execution, every shared-operator result is cross-checked,
and a sample of each batch's cache hits is recomputed from scratch.
Failures raise :class:`CorrectnessError` naming the query and the first
divergent group.
"""

from .errors import (
    CorrectnessError,
    Divergence,
    PlanCoverageError,
    PlanValidationError,
)
from .paranoia import (
    check_result,
    check_results,
    first_divergence,
    recheck_cache_hits,
)
from .reference import raw_base_entry, reference_answer
from .validate import expected_operator, validate_class, validate_global_plan

__all__ = [
    "CorrectnessError",
    "Divergence",
    "PlanCoverageError",
    "PlanValidationError",
    "check_result",
    "check_results",
    "expected_operator",
    "first_divergence",
    "raw_base_entry",
    "recheck_cache_hits",
    "reference_answer",
    "validate_class",
    "validate_global_plan",
]
