"""Structured errors raised by the differential correctness harness.

Every failure the harness can detect maps to one of three exception types:

* :class:`PlanValidationError` — a :class:`~repro.core.optimizer.plans.GlobalPlan`
  is structurally wrong *before* execution (a query uncovered or covered
  twice, a class source that is not a lattice ancestor of a member query, a
  method mix no operator implements);
* :class:`PlanCoverageError` — a result was asked of a report whose plan
  never covered the query (the runtime shadow of the validator's coverage
  check);
* :class:`CorrectnessError` — an *executed* answer diverged from the
  brute-force reference evaluator.  It carries the plan, the offending
  query, and the first divergent group so a failure is immediately
  actionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..core.optimizer.plans import GlobalPlan
    from ..schema.query import GroupByQuery


class PlanValidationError(ValueError):
    """A global plan failed structural validation (see
    :func:`repro.check.validate.validate_global_plan`)."""


class PlanCoverageError(KeyError):
    """A query's result was requested from a report whose plan does not
    cover that query.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    keep working, but renders its message verbatim (KeyError's default
    ``str`` wraps the message in quotes)."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class Divergence:
    """The first point where an executed answer departs from ground truth.

    ``kind`` is one of ``"missing-group"`` (the reference has the group,
    the engine dropped it), ``"extra-group"`` (the engine invented it), or
    ``"value-mismatch"`` (same group, different aggregate).  ``expected`` /
    ``actual`` are None when the group is absent on that side.
    """

    kind: str
    group: Tuple[int, ...]
    expected: Optional[float]
    actual: Optional[float]

    def describe(self) -> str:
        """Human-readable one-line/short rendering for display."""
        return (
            f"{self.kind} at group {self.group}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


class CorrectnessError(AssertionError):
    """A shared-plan answer diverged from the reference evaluator.

    Structured: ``plan`` is the :class:`GlobalPlan` being executed (when
    known), ``query`` the offending :class:`GroupByQuery`, ``divergence``
    the first differing group (None for non-result failures, e.g. a plan
    that failed validation under paranoia).
    """

    def __init__(
        self,
        message: str,
        *,
        plan: "Optional[GlobalPlan]" = None,
        query: "Optional[GroupByQuery]" = None,
        divergence: Optional[Divergence] = None,
    ):
        super().__init__(message)
        self.plan = plan
        self.query = query
        self.divergence = divergence
