"""The ground-truth evaluator: one query, one tuple-at-a-time scan.

Deliberately naive, per Gray et al.'s data-cube semantics: answer a
:class:`~repro.schema.query.GroupByQuery` by scanning the *raw fact table*
row by row, joining each tuple to its dimension hierarchies by per-row
rollup navigation, applying every predicate, and folding the measure into a
plain dict accumulator.  No sharing, no indexes, no materialized group-bys,
no buffer pool — nothing the engine under test relies on.  Oracle work is
free: it never touches the simulated cost clock.

This intentionally shares no code with
:func:`repro.engine.reference.evaluate_reference` (which evaluates over an
arbitrary row iterable for operator-level unit tests); an oracle that
reused engine plumbing could inherit an engine bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..core.operators.results import QueryResult
from ..schema.query import Aggregate, GroupByQuery
from ..storage.catalog import Catalog, TableEntry
from .errors import PlanValidationError

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import Database


def raw_base_entry(
    catalog: Catalog, base_name: Optional[str] = None
) -> TableEntry:
    """The raw (un-aggregated) fact table the reference scans.

    With ``base_name`` given, that table is fetched and checked; otherwise
    the catalog must hold exactly one raw table.
    """
    if base_name is not None:
        entry = catalog.get(base_name)
        if not entry.is_raw:
            raise PlanValidationError(
                f"{base_name!r} is a materialized view; the reference "
                f"evaluator needs raw fact data"
            )
        return entry
    raw = [entry for entry in catalog.entries() if entry.is_raw]
    if not raw:
        raise PlanValidationError(
            "no raw base table registered; nothing to evaluate against"
        )
    if len(raw) > 1:
        names = [entry.name for entry in raw]
        raise PlanValidationError(
            f"several raw tables exist ({names}); pass base_name"
        )
    return raw[0]


def reference_answer(
    db: "Database", query: GroupByQuery, base_name: Optional[str] = None
) -> QueryResult:
    """Ground truth for ``query``: a naive scan of the raw fact table.

    Every tuple is joined to each dimension by rollup navigation; tuples
    passing all predicates contribute to exactly the one group the target
    group-by assigns them (the correctness contract behind the paper's
    "Filter tuples" routing).
    """
    schema = db.schema
    query.validate(schema)
    entry = raw_base_entry(db.catalog, base_name)
    source_levels = entry.levels
    n_dims = schema.n_dims
    sums: Dict[Tuple[int, ...], float] = {}
    counts: Dict[Tuple[int, ...], int] = {}
    mins: Dict[Tuple[int, ...], float] = {}
    maxs: Dict[Tuple[int, ...], float] = {}
    for row in entry.table.all_rows():
        # Join the tuple to each dimension: navigate from the stored key up
        # to whatever level a predicate or the target group-by needs.
        keep = True
        for pred in query.predicates:
            d = pred.dim_index
            member = schema.dimensions[d].rollup(
                source_levels[d], pred.level, int(row[d])
            )
            if member not in pred.member_ids:
                keep = False
                break
        if not keep:
            continue
        group = []
        for d in range(n_dims):
            dim = schema.dimensions[d]
            target = query.groupby.levels[d]
            if target == dim.all_level:
                group.append(0)
            else:
                group.append(dim.rollup(source_levels[d], target, int(row[d])))
        key = tuple(group)
        measure = float(row[n_dims])
        sums[key] = sums.get(key, 0.0) + measure
        counts[key] = counts.get(key, 0) + 1
        mins[key] = min(mins.get(key, measure), measure)
        maxs[key] = max(maxs.get(key, measure), measure)
    aggregate = query.aggregate
    if aggregate is Aggregate.SUM:
        groups = sums
    elif aggregate is Aggregate.COUNT:
        groups = {key: float(n) for key, n in counts.items()}
    elif aggregate is Aggregate.MIN:
        groups = mins
    elif aggregate is Aggregate.MAX:
        groups = maxs
    elif aggregate is Aggregate.AVG:
        groups = {key: total / counts[key] for key, total in sums.items()}
    else:  # pragma: no cover - Aggregate is a closed enum
        raise NotImplementedError(aggregate)
    return QueryResult(query=query, groups=groups)
