"""Structural validation of a global plan, before anything executes.

A :class:`~repro.core.optimizer.plans.GlobalPlan` is structurally sound for
a submitted query set when

1. **coverage** — every submitted query appears in exactly one class (and
   nothing else does);
2. **ancestry** — each class's source table is a lattice ancestor of every
   member query: its stored levels are fine enough for the query's target
   group-by *and* its predicates, and its measure column is
   aggregate-compatible (:func:`repro.schema.lattice.source_can_answer`);
3. **method mix** — the class's per-plan join methods name an operator the
   executor actually has (see :func:`expected_operator`), and every
   index-method plan has a usable join index on its source;
4. **no duplicate sources** — merging algorithms must not leave two classes
   on one base table (the naive baseline is exempt, as in
   :meth:`GlobalPlan.validate`).

Violations raise :class:`~repro.check.errors.PlanValidationError` with a
message naming the class, query, and rule broken.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from ..core.optimizer.plans import GlobalPlan, JoinMethod, PlanClass
from ..schema.lattice import source_can_answer
from ..schema.query import GroupByQuery
from ..schema.star import StarSchema
from ..storage.catalog import Catalog, TableEntry
from .errors import PlanValidationError

#: Algorithms whose plans legitimately carry several classes on one source.
UNMERGED_ALGORITHMS = frozenset({"naive"})


def expected_operator(plan_class: PlanClass) -> str:
    """The physical operator ``run_class`` lowers this class onto.

    Mirrors the executor's dispatch exactly: pure-hash classes run the
    shared scan, pure-index classes the (shared) index join, mixed classes
    the hybrid — so validation and execution cannot drift apart silently.
    """
    if not plan_class.plans:
        raise PlanValidationError(
            f"class on {plan_class.source!r} is empty: no operator applies"
        )
    if plan_class.is_pure_hash:
        return "shared_scan_hash"
    if plan_class.is_pure_index:
        return "index_star" if len(plan_class.plans) == 1 else "shared_index"
    return "shared_hybrid"


def _has_usable_index(
    schema: StarSchema, entry: TableEntry, query: GroupByQuery
) -> bool:
    """True when at least one of the query's predicates can be evaluated
    through a join index on ``entry`` (the same exact-or-finer-level rule
    as :func:`repro.core.operators.index_join.usable_index`)."""
    for pred in query.predicates:
        stored = entry.levels[pred.dim_index]
        for level in range(pred.level, stored - 1, -1):
            if entry.index_for(pred.dim_index, level) is not None:
                return True
    return False


def validate_class(
    schema: StarSchema, catalog: Catalog, plan_class: PlanClass
) -> None:
    """Validate one class: source ancestry, aggregates, and method mix."""
    operator = expected_operator(plan_class)  # also rejects empty classes
    if plan_class.source not in catalog:
        raise PlanValidationError(
            f"class source {plan_class.source!r} is not a registered table"
        )
    entry = catalog.get(plan_class.source)
    if len(entry.levels) != schema.n_dims:
        raise PlanValidationError(
            f"source {plan_class.source!r} stores {len(entry.levels)} "
            f"dimension(s); the schema has {schema.n_dims}"
        )
    for plan in plan_class.plans:
        query = plan.query
        if not isinstance(plan.method, JoinMethod):
            raise PlanValidationError(
                f"{query.display_name()} carries an unknown join method "
                f"{plan.method!r}"
            )
        if not source_can_answer(entry.levels, entry.source_aggregate, query):
            raise PlanValidationError(
                f"source {plan_class.source!r} (levels {entry.levels}, "
                f"measure {entry.source_aggregate or 'raw'}) is not a "
                f"lattice ancestor able to answer {query.display_name()} "
                f"(required levels {query.required_levels()}, aggregate "
                f"{query.aggregate.value})"
            )
        if plan.method is JoinMethod.INDEX and not _has_usable_index(
            schema, entry, query
        ):
            raise PlanValidationError(
                f"{query.display_name()} is planned as an index join on "
                f"{plan_class.source!r}, but no join index covers any of "
                f"its predicates (operator {operator!r} would fail)"
            )


def validate_global_plan(
    schema: StarSchema,
    catalog: Catalog,
    plan: GlobalPlan,
    queries: Optional[Sequence[GroupByQuery]] = None,
    allow_duplicate_sources: Optional[bool] = None,
) -> None:
    """Validate ``plan`` structurally; raise :class:`PlanValidationError`.

    ``queries`` is the submitted batch; when omitted, coverage is checked
    for internal consistency only (no query planned twice).
    ``allow_duplicate_sources`` defaults to whether the plan's algorithm is
    a deliberately-unmerged baseline.
    """
    planned = Counter(q.qid for q in plan.queries)
    duplicated = sorted(qid for qid, n in planned.items() if n > 1)
    if duplicated:
        raise PlanValidationError(
            f"queries with qid(s) {duplicated} appear in more than one "
            f"class; each query must be covered exactly once"
        )
    if queries is not None:
        asked = {q.qid: q for q in queries}
        missing = sorted(qid for qid in asked if qid not in planned)
        extra = sorted(qid for qid in planned if qid not in asked)
        if missing:
            names = [asked[qid].display_name() for qid in missing]
            raise PlanValidationError(
                f"plan covers no class for submitted query(ies) "
                f"{', '.join(names)} (qid(s) {missing})"
            )
        if extra:
            raise PlanValidationError(
                f"plan covers qid(s) {extra} that were never submitted"
            )
    if allow_duplicate_sources is None:
        allow_duplicate_sources = plan.algorithm in UNMERGED_ALGORITHMS
    if not allow_duplicate_sources:
        sources = [cls.source for cls in plan.classes]
        repeated = sorted(
            source for source, n in Counter(sources).items() if n > 1
        )
        if repeated:
            raise PlanValidationError(
                f"two classes share base table(s) {repeated}; a merging "
                f"algorithm should have combined them"
            )
    for plan_class in plan.classes:
        validate_class(schema, catalog, plan_class)
