"""Structural validation of a global plan, before anything executes.

A :class:`~repro.core.optimizer.plans.GlobalPlan` is structurally sound for
a submitted query set when

1. **coverage** — every submitted query appears in exactly one class (and
   nothing else does);
2. **ancestry** — each class's source table is a lattice ancestor of every
   member query: its stored levels are fine enough for the query's target
   group-by *and* its predicates, and its measure column is
   aggregate-compatible (:func:`repro.schema.lattice.source_can_answer`);
3. **method mix** — the class's per-plan join methods name an operator the
   executor actually has (see :func:`expected_operator`), and every
   index-method plan has a usable join index on its source;
4. **no duplicate sources** — merging algorithms must not leave two classes
   on one base table (the naive baseline is exempt, as in
   :meth:`GlobalPlan.validate`).

Violations raise :class:`~repro.check.errors.PlanValidationError` with a
message naming the class, query, and rule broken.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from ..core.optimizer.plans import GlobalPlan, JoinMethod, PlanClass
from ..schema.lattice import source_can_answer
from ..schema.query import GroupByQuery
from ..schema.star import StarSchema
from ..storage.catalog import Catalog, TableEntry
from .errors import PlanValidationError

#: Algorithms whose plans legitimately carry several classes on one source.
UNMERGED_ALGORITHMS = frozenset({"naive"})


def expected_operator(plan_class: PlanClass) -> str:
    """The physical operator ``run_class`` lowers this class onto.

    Mirrors the executor's dispatch exactly: pure-hash classes run the
    shared scan, pure-index classes the (shared) index join, mixed classes
    the hybrid — so validation and execution cannot drift apart silently.
    """
    if not plan_class.plans:
        raise PlanValidationError(
            f"class on {plan_class.source!r} is empty: no operator applies"
        )
    if plan_class.has_derives:
        return "shared_dag"
    if plan_class.is_pure_hash:
        return "shared_scan_hash"
    if plan_class.is_pure_index:
        return "index_star" if len(plan_class.plans) == 1 else "shared_index"
    return "shared_hybrid"


def _validate_derives(
    schema: StarSchema, entry: TableEntry, plan_class: PlanClass
) -> None:
    """Validate a DAG class's derive steps (see :mod:`repro.dag`):

    * each intermediate is predicate-free, AVG-free, and answerable from
      the class's source;
    * each derived qid is a class member planned with the DERIVE method,
      and every DERIVE-method member is claimed by exactly one step;
    * each derived query is answerable from its intermediate — fine-enough
      levels and a compatible measure kind.
    """
    from ..core.operators.dag_join import intermediate_source_aggregate
    from ..schema.query import Aggregate

    by_qid = {p.query.qid: p for p in plan_class.plans}
    claimed = Counter()
    for step in plan_class.derives:
        intermediate = step.intermediate
        if intermediate.predicates:
            raise PlanValidationError(
                f"derive intermediate {intermediate.display_name()} on "
                f"{plan_class.source!r} carries predicates; intermediates "
                f"must be predicate-free"
            )
        if intermediate.aggregate is Aggregate.AVG:
            raise PlanValidationError(
                f"derive intermediate {intermediate.display_name()} is an "
                f"AVG; AVG is not re-aggregable and can never be derived"
            )
        if not source_can_answer(
            entry.levels, entry.source_aggregate, intermediate
        ):
            raise PlanValidationError(
                f"derive intermediate {intermediate.display_name()} is not "
                f"computable from {plan_class.source!r} "
                f"(levels {entry.levels})"
            )
        if not step.qids:
            raise PlanValidationError(
                f"derive step {intermediate.display_name()} on "
                f"{plan_class.source!r} answers no member queries"
            )
        inter_agg = intermediate_source_aggregate(
            entry.source_aggregate, intermediate
        )
        for qid in step.qids:
            claimed[qid] += 1
            plan = by_qid.get(qid)
            if plan is None:
                raise PlanValidationError(
                    f"derive step {intermediate.display_name()} claims qid "
                    f"{qid}, which is not a member of the class on "
                    f"{plan_class.source!r}"
                )
            if plan.method is not JoinMethod.DERIVE:
                raise PlanValidationError(
                    f"{plan.query.display_name()} is claimed by derive step "
                    f"{intermediate.display_name()} but planned as "
                    f"{plan.method.name}"
                )
            if not source_can_answer(
                intermediate.groupby.levels, inter_agg, plan.query
            ):
                raise PlanValidationError(
                    f"{plan.query.display_name()} is not derivable from "
                    f"intermediate {intermediate.display_name()} (levels "
                    f"{intermediate.groupby.levels}, measure {inter_agg!r})"
                )
    over_claimed = sorted(q for q, n in claimed.items() if n > 1)
    if over_claimed:
        raise PlanValidationError(
            f"qid(s) {over_claimed} are claimed by more than one derive "
            f"step on {plan_class.source!r}"
        )
    derive_members = sorted(
        p.query.qid
        for p in plan_class.plans
        if p.method is JoinMethod.DERIVE
    )
    unclaimed = sorted(set(derive_members) - set(claimed))
    if unclaimed:
        raise PlanValidationError(
            f"qid(s) {unclaimed} on {plan_class.source!r} are planned with "
            f"the DERIVE method but no derive step produces them"
        )


def _has_usable_index(
    schema: StarSchema, entry: TableEntry, query: GroupByQuery
) -> bool:
    """True when at least one of the query's predicates can be evaluated
    through a join index on ``entry`` (the same exact-or-finer-level rule
    as :func:`repro.core.operators.index_join.usable_index`)."""
    for pred in query.predicates:
        stored = entry.levels[pred.dim_index]
        for level in range(pred.level, stored - 1, -1):
            if entry.index_for(pred.dim_index, level) is not None:
                return True
    return False


def validate_class(
    schema: StarSchema, catalog: Catalog, plan_class: PlanClass
) -> None:
    """Validate one class: source ancestry, aggregates, and method mix."""
    operator = expected_operator(plan_class)  # also rejects empty classes
    if plan_class.source not in catalog:
        raise PlanValidationError(
            f"class source {plan_class.source!r} is not a registered table"
        )
    entry = catalog.get(plan_class.source)
    if len(entry.levels) != schema.n_dims:
        raise PlanValidationError(
            f"source {plan_class.source!r} stores {len(entry.levels)} "
            f"dimension(s); the schema has {schema.n_dims}"
        )
    for plan in plan_class.plans:
        query = plan.query
        if not isinstance(plan.method, JoinMethod):
            raise PlanValidationError(
                f"{query.display_name()} carries an unknown join method "
                f"{plan.method!r}"
            )
        if not source_can_answer(entry.levels, entry.source_aggregate, query):
            raise PlanValidationError(
                f"source {plan_class.source!r} (levels {entry.levels}, "
                f"measure {entry.source_aggregate or 'raw'}) is not a "
                f"lattice ancestor able to answer {query.display_name()} "
                f"(required levels {query.required_levels()}, aggregate "
                f"{query.aggregate.value})"
            )
        if plan.method is JoinMethod.INDEX and not _has_usable_index(
            schema, entry, query
        ):
            raise PlanValidationError(
                f"{query.display_name()} is planned as an index join on "
                f"{plan_class.source!r}, but no join index covers any of "
                f"its predicates (operator {operator!r} would fail)"
            )
        if (
            plan.method is JoinMethod.DERIVE
            and not plan_class.has_derives
        ):
            raise PlanValidationError(
                f"{query.display_name()} carries the DERIVE method but the "
                f"class on {plan_class.source!r} has no derive steps (only "
                f"DAG classes may derive)"
            )
    if plan_class.has_derives:
        _validate_derives(schema, entry, plan_class)


def validate_global_plan(
    schema: StarSchema,
    catalog: Catalog,
    plan: GlobalPlan,
    queries: Optional[Sequence[GroupByQuery]] = None,
    allow_duplicate_sources: Optional[bool] = None,
) -> None:
    """Validate ``plan`` structurally; raise :class:`PlanValidationError`.

    ``queries`` is the submitted batch; when omitted, coverage is checked
    for internal consistency only (no query planned twice).
    ``allow_duplicate_sources`` defaults to whether the plan's algorithm is
    a deliberately-unmerged baseline.
    """
    planned = Counter(q.qid for q in plan.queries)
    duplicated = sorted(qid for qid, n in planned.items() if n > 1)
    if duplicated:
        raise PlanValidationError(
            f"queries with qid(s) {duplicated} appear in more than one "
            f"class; each query must be covered exactly once"
        )
    if queries is not None:
        asked = {q.qid: q for q in queries}
        missing = sorted(qid for qid in asked if qid not in planned)
        extra = sorted(qid for qid in planned if qid not in asked)
        if missing:
            names = [asked[qid].display_name() for qid in missing]
            raise PlanValidationError(
                f"plan covers no class for submitted query(ies) "
                f"{', '.join(names)} (qid(s) {missing})"
            )
        if extra:
            raise PlanValidationError(
                f"plan covers qid(s) {extra} that were never submitted"
            )
    if allow_duplicate_sources is None:
        allow_duplicate_sources = plan.algorithm in UNMERGED_ALGORITHMS
    if not allow_duplicate_sources:
        sources = [cls.source for cls in plan.classes]
        repeated = sorted(
            source for source, n in Counter(sources).items() if n > 1
        )
        if repeated:
            raise PlanValidationError(
                f"two classes share base table(s) {repeated}; a merging "
                f"algorithm should have combined them"
            )
    for plan_class in plan.classes:
        validate_class(schema, catalog, plan_class)
