"""Differential cross-checking of executed results against ground truth.

The executor (and the result cache) call in here when paranoia mode is on:
every :class:`~repro.core.operators.results.QueryResult` a shared operator
produces — and a sample of every batch's cache hits — is recomputed by the
naive reference evaluator and compared group-for-group.  The comparison
demands the *same set of group keys* and equal aggregate values (within
``rel_tol``, defaulting to the suite-wide 1e-9 — tight enough that any
routing or staleness bug trips it, loose enough to absorb float summation
order).

A mismatch raises :class:`~repro.check.errors.CorrectnessError` carrying
the plan, the offending query, and the first divergent group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

from ..core.operators.results import QueryResult
from ..obs.metrics import default_registry
from .errors import CorrectnessError, Divergence
from .reference import reference_answer

if TYPE_CHECKING:  # pragma: no cover
    from ..core.optimizer.plans import GlobalPlan
    from ..engine.database import Database

#: Relative tolerance for aggregate-value equality.
DEFAULT_REL_TOL = 1e-9

#: How many of a batch's cache hits are recomputed per serve.
DEFAULT_HIT_SAMPLE = 2


def first_divergence(
    expected: Mapping[Tuple[int, ...], float],
    actual: Mapping[Tuple[int, ...], float],
    rel_tol: float = DEFAULT_REL_TOL,
) -> Optional[Divergence]:
    """The first (deterministically ordered) group where two answers
    differ, or None when they agree."""
    for key in sorted(set(expected) | set(actual)):
        if key not in actual:
            return Divergence("missing-group", key, expected[key], None)
        if key not in expected:
            return Divergence("extra-group", key, None, actual[key])
        want, got = expected[key], actual[key]
        scale = max(abs(want), abs(got), 1.0)
        if abs(want - got) > rel_tol * scale:
            return Divergence("value-mismatch", key, want, got)
    return None


def check_result(
    db: "Database",
    result: QueryResult,
    plan: "Optional[GlobalPlan]" = None,
    rel_tol: float = DEFAULT_REL_TOL,
    context: str = "executed result",
) -> None:
    """Cross-check one result against the reference; raise on divergence."""
    expected = reference_answer(db, result.query)
    divergence = first_divergence(expected.groups, result.groups, rel_tol)
    if divergence is None:
        return
    default_registry().counter(
        "check.divergences", "differential checks that found a wrong answer"
    ).inc()
    raise CorrectnessError(
        f"{context} for {result.query.display_name()} diverges from the "
        f"reference evaluator: {divergence.describe()} "
        f"({expected.n_groups} group(s) expected, {result.n_groups} got)",
        plan=plan,
        query=result.query,
        divergence=divergence,
    )


def check_results(
    db: "Database",
    results: Sequence[QueryResult],
    plan: "Optional[GlobalPlan]" = None,
    rel_tol: float = DEFAULT_REL_TOL,
) -> int:
    """Cross-check a batch of results; returns how many were checked."""
    for result in results:
        check_result(db, result, plan=plan, rel_tol=rel_tol)
    default_registry().counter(
        "check.results_checked", "results cross-checked against the reference"
    ).inc(len(results))
    return len(results)


def recheck_cache_hits(
    db: "Database",
    hits: Dict[int, QueryResult],
    sample: int = DEFAULT_HIT_SAMPLE,
    rel_tol: float = DEFAULT_REL_TOL,
) -> int:
    """Recompute a deterministic sample of served cache hits from scratch.

    Catches a stale cache (an invalidation path that was never hooked) the
    moment it serves a wrong answer.  Returns how many hits were rechecked.
    """
    chosen = [hits[qid] for qid in sorted(hits)[: max(0, sample)]]
    for result in chosen:
        check_result(db, result, rel_tol=rel_tol, context="cached result")
    if chosen:
        default_registry().counter(
            "check.cache_hits_rechecked",
            "cache hits recomputed from scratch under paranoia",
        ).inc(len(chosen))
    return len(chosen)
