"""Experiment harness regenerating the paper's tables and figures.

Tests 1–3 (Figures 10–12) measure the shared operators against separate
execution with *forced* plans, exactly as the paper forces join method and
base table per test.  Tests 4–7 (Table 2) compare the global plans produced
by TPLO, ETPLG, GG, and the exhaustive optimal planner.

All functions return structured rows (also printable with
:mod:`repro.bench.reporting`) so benchmark code can assert the paper's
qualitative shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.executor import run_class
from ..core.operators.results import QueryResult
from ..core.optimizer.plans import JoinMethod, LocalPlan, PlanClass
from ..engine.database import Database
from ..schema.query import GroupByQuery


@dataclass
class ForcedRun:
    """One measured execution of a forced plan class."""

    sim_ms: float
    io_ms: float
    cpu_ms: float
    rand_page_reads: int
    seq_page_reads: int
    wall_s: float
    results: List[QueryResult]


def run_forced_class(
    db: Database,
    source: str,
    queries: Sequence[GroupByQuery],
    methods: Sequence[JoinMethod],
    cold: bool = True,
) -> ForcedRun:
    """Execute ``queries`` on ``source`` with the given join methods as one
    class (sharing applies), measuring simulated and wall time."""
    plans = [
        LocalPlan(query=q, source=source, method=m)
        for q, m in zip(queries, methods)
    ]
    plan_class = PlanClass(source=source, plans=plans)
    if cold:
        db.flush()
    before = db.stats.snapshot()
    started = time.perf_counter()
    results = run_class(db.ctx(), plan_class)
    wall_s = time.perf_counter() - started
    delta = db.stats.delta_since(before)
    return ForcedRun(
        sim_ms=delta.total_ms,
        io_ms=delta.io_ms,
        cpu_ms=delta.cpu_ms,
        rand_page_reads=delta.rand_page_reads,
        seq_page_reads=delta.seq_page_reads,
        wall_s=wall_s,
        results=results,
    )


def run_separately(
    db: Database,
    source: str,
    queries: Sequence[GroupByQuery],
    methods: Sequence[JoinMethod],
) -> ForcedRun:
    """Execute each query in its own cold run (the paper's dotted bars) and
    sum the measurements."""
    total = ForcedRun(0.0, 0.0, 0.0, 0, 0, 0.0, [])
    for query, method in zip(queries, methods):
        run = run_forced_class(db, source, [query], [method], cold=True)
        total.sim_ms += run.sim_ms
        total.io_ms += run.io_ms
        total.cpu_ms += run.cpu_ms
        total.rand_page_reads += run.rand_page_reads
        total.seq_page_reads += run.seq_page_reads
        total.wall_s += run.wall_s
        total.results.extend(run.results)
    return total


@dataclass
class SharingRow:
    """One bar pair of Figures 10–12: k queries, separate vs shared."""

    n_queries: int
    separate_ms: float
    shared_ms: float
    separate_io_ms: float
    shared_io_ms: float
    separate_wall_s: float
    shared_wall_s: float

    @property
    def speedup(self) -> float:
        """separate/shared simulated-time ratio (0 when shared is 0)."""
        return self.separate_ms / self.shared_ms if self.shared_ms else 0.0


def _sharing_sweep(
    db: Database,
    source: str,
    queries: Sequence[GroupByQuery],
    methods: Sequence[JoinMethod],
) -> List[SharingRow]:
    rows: List[SharingRow] = []
    for k in range(1, len(queries) + 1):
        subset = list(queries[:k])
        sub_methods = list(methods[:k])
        separate = run_separately(db, source, subset, sub_methods)
        shared = run_forced_class(db, source, subset, sub_methods)
        _check_same_results(separate.results, shared.results)
        rows.append(
            SharingRow(
                n_queries=k,
                separate_ms=separate.sim_ms,
                shared_ms=shared.sim_ms,
                separate_io_ms=separate.io_ms,
                shared_io_ms=shared.io_ms,
                separate_wall_s=separate.wall_s,
                shared_wall_s=shared.wall_s,
            )
        )
    return rows


def run_test1_shared_scan(
    db: Database, queries: Sequence[GroupByQuery], source: str = "ABCD"
) -> List[SharingRow]:
    """Test 1 / Figure 10: Queries 1–4 forced to hash joins on ABCD."""
    return _sharing_sweep(db, source, queries, [JoinMethod.HASH] * len(queries))


def run_test2_shared_index(
    db: Database, queries: Sequence[GroupByQuery], source: str = "A'B'C'D"
) -> List[SharingRow]:
    """Test 2 / Figure 11: Queries 5–8 forced to index joins on A'B'C'D."""
    return _sharing_sweep(db, source, queries, [JoinMethod.INDEX] * len(queries))


def run_test3_hybrid(
    db: Database,
    hash_queries: Sequence[GroupByQuery],
    index_queries: Sequence[GroupByQuery],
    source: str = "A'B'C'D",
) -> List[SharingRow]:
    """Test 3 / Figure 12: hash queries plus index queries added one at a
    time, sharing one scan of the base table."""
    rows: List[SharingRow] = []
    for k in range(len(index_queries) + 1):
        queries = list(hash_queries) + list(index_queries[:k])
        methods = [JoinMethod.HASH] * len(hash_queries) + [
            JoinMethod.INDEX
        ] * k
        separate = run_separately(db, source, queries, methods)
        shared = run_forced_class(db, source, queries, methods)
        _check_same_results(separate.results, shared.results)
        rows.append(
            SharingRow(
                n_queries=len(queries),
                separate_ms=separate.sim_ms,
                shared_ms=shared.sim_ms,
                separate_io_ms=separate.io_ms,
                shared_io_ms=shared.io_ms,
                separate_wall_s=separate.wall_s,
                shared_wall_s=shared.wall_s,
            )
        )
    return rows


@dataclass
class AlgorithmRow:
    """One cell row of Table 2: one algorithm's plan on one MDX expression."""

    algorithm: str
    est_ms: float
    sim_ms: float
    wall_s: float
    n_classes: int
    plan: str
    results: Dict[int, QueryResult] = field(repr=False, default_factory=dict)


DEFAULT_ALGORITHMS = ("tplo", "etplg", "gg", "optimal")


def run_algorithm_comparison(
    db: Database,
    queries: Sequence[GroupByQuery],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> List[AlgorithmRow]:
    """Tests 4–7 / Table 2: plan + execute one query set with each
    algorithm, verifying every algorithm returns identical answers."""
    rows: List[AlgorithmRow] = []
    reference: Optional[Dict[int, QueryResult]] = None
    for algorithm in algorithms:
        plan = db.optimize(list(queries), algorithm)
        report = db.execute(plan)
        results = report.results
        if reference is None:
            reference = results
        else:
            for qid, result in results.items():
                if not result.approx_equals(reference[qid]):
                    raise AssertionError(
                        f"{algorithm} returned different answers for "
                        f"{result.query.display_name()}"
                    )
        rows.append(
            AlgorithmRow(
                algorithm=algorithm,
                est_ms=plan.est_cost_ms,
                sim_ms=report.sim_ms,
                wall_s=report.wall_s,
                n_classes=len(plan.classes),
                plan="; ".join(
                    f"{cls.source}({'+'.join(p.method.name[0] for p in cls.plans)})"
                    for cls in plan.classes
                ),
                results=results,
            )
        )
    return rows


def table1_rows(db: Database) -> List[Tuple[str, int, int]]:
    """Table 1: materialized group-by sizes (name, rows, pages)."""
    return db.table_report()


def _check_same_results(
    left: Sequence[QueryResult], right: Sequence[QueryResult]
) -> None:
    by_qid = {r.query.qid: r for r in right}
    for result in left:
        twin = by_qid.get(result.query.qid)
        if twin is None or not result.approx_equals(twin):
            raise AssertionError(
                f"shared and separate execution disagree for "
                f"{result.query.display_name()}"
            )
