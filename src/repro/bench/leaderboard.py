"""Markdown leaderboard over committed benchmark records.

The repo commits one ``BENCH_<label>.json`` per tracked configuration
(e.g. ``BENCH_seed.json`` for the per-tuple path, ``BENCH_kernels.json``
for the columnar kernels).  :func:`load_records` collects every such file
in a directory and :func:`render_leaderboard` turns them into the markdown
table embedded in ``docs/performance.md`` — simulated costs side by side
(they must match between execution paths) with the wall-clock column
showing the real win.

CLI: ``repro bench --leaderboard [--dir DIR] [--output FILE]``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .history import PathLike, RunRecord

#: Display names for the RunRecord.kernels tri-state.
_PATH_NAMES = {True: "kernels", False: "tuple", None: "?"}


def load_records(
    directory: Optional[PathLike] = None,
) -> List[Tuple[Path, RunRecord]]:
    """Every ``BENCH_*.json`` in ``directory`` (default: current dir),
    sorted by label; unreadable files raise — a committed record that no
    longer parses is a repo bug, not something to skip silently.

    A corrupt or schema-drifted file raises :class:`ValueError` naming
    *that file* and the parse/validation failure, so the CLI can surface
    it as a usage error (exit 2) instead of a traceback.
    """
    base = Path(directory) if directory is not None else Path.cwd()
    out: List[Tuple[Path, RunRecord]] = []
    for path in sorted(base.glob("BENCH_*.json")):
        try:
            out.append((path, RunRecord.load(path)))
        except (ValueError, OSError) as exc:
            # json.JSONDecodeError subclasses ValueError; re-raise either
            # way with the offending file named.
            raise ValueError(f"{path.name}: {exc}") from exc
    return out


def _algo_sim_total(
    record: RunRecord, algorithm: str
) -> Optional[float]:
    """Total simulated cost of one algorithm's plans across the record's
    tests — one deterministic number summarizing the whole Table-2 sweep."""
    total = 0.0
    seen = False
    for rows in record.tests.values():
        for row in rows:
            if (
                row.get("algorithm") == algorithm
                and row.get("sim_ms") is not None
            ):
                total += row["sim_ms"]
                seen = True
    return round(total, 3) if seen else None


def _gg_sim_total(record: RunRecord) -> Optional[float]:
    return _algo_sim_total(record, "gg")


def _best_speedup(record: RunRecord) -> Optional[float]:
    """Largest shared-vs-separate speedup across the figure sweeps."""
    best: Optional[float] = None
    for rows in record.figures.values():
        for row in rows:
            speedup = row.get("speedup")
            if speedup is not None and (best is None or speedup > best):
                best = speedup
    return best


def _cell(value: object, fmt: str = "{}") -> str:
    return "-" if value is None else fmt.format(value)


def render_leaderboard(
    records: Sequence[Tuple[PathLike, RunRecord]],
) -> str:
    """The leaderboard as a markdown table, fastest wall clock first.

    Simulated columns are byte-comparable across rows that share a
    fingerprint; wall seconds are environment-dependent context.
    """
    if not records:
        raise ValueError("no benchmark records to render")

    def sort_key(item: Tuple[PathLike, RunRecord]) -> Tuple[int, float, str]:
        path, record = item
        wall = record.wall.get("total_s")
        return (wall is None, wall if wall is not None else 0.0, str(path))

    lines = [
        "| record | path | recorded | wall s | gg sim-ms | dag sim-ms "
        "| best speedup | q-error p95 | misrankings |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for path, record in sorted(records, key=sort_key):
        lines.append(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |".format(
                Path(path).name,
                _PATH_NAMES.get(record.kernels, "?"),
                record.created_at or "-",
                _cell(record.wall.get("total_s"), "{:.2f}"),
                _cell(_gg_sim_total(record), "{:.1f}"),
                _cell(_algo_sim_total(record, "dag"), "{:.1f}"),
                _cell(_best_speedup(record), "{:.2f}x"),
                _cell(record.calibration.get("q_error_p95")),
                _cell(record.calibration.get("misrankings")),
            )
        )
    return "\n".join(lines)
