"""Markdown leaderboard over committed benchmark records.

The repo commits one ``BENCH_<label>.json`` per tracked configuration
(e.g. ``BENCH_seed.json`` for the per-tuple path, ``BENCH_kernels.json``
for the columnar kernels).  :func:`load_records` collects every such file
in a directory and :func:`render_leaderboard` turns them into the markdown
table embedded in ``docs/performance.md`` — simulated costs side by side
(they must match between execution paths) with the wall-clock column
showing the real win.

CLI: ``repro bench --leaderboard [--dir DIR] [--output FILE]``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .history import PathLike, RunRecord

#: Display names for the RunRecord.kernels tri-state.
_PATH_NAMES = {True: "kernels", False: "tuple", None: "?"}


def load_records(
    directory: Optional[PathLike] = None,
) -> List[Tuple[Path, RunRecord]]:
    """Every ``BENCH_*.json`` in ``directory`` (default: current dir),
    sorted by label; unreadable files raise — a committed record that no
    longer parses is a repo bug, not something to skip silently.

    A corrupt or schema-drifted file raises :class:`ValueError` naming
    *that file* and the parse/validation failure, so the CLI can surface
    it as a usage error (exit 2) instead of a traceback.
    """
    base = Path(directory) if directory is not None else Path.cwd()
    out: List[Tuple[Path, RunRecord]] = []
    for path in sorted(base.glob("BENCH_*.json")):
        try:
            out.append((path, RunRecord.load(path)))
        except (ValueError, OSError) as exc:
            # json.JSONDecodeError subclasses ValueError; re-raise either
            # way with the offending file named.
            raise ValueError(f"{path.name}: {exc}") from exc
    return out


def _algo_sim_total(
    record: RunRecord, algorithm: str
) -> Optional[float]:
    """Total simulated cost of one algorithm's plans across the record's
    tests — one deterministic number summarizing the whole Table-2 sweep."""
    total = 0.0
    seen = False
    for rows in record.tests.values():
        for row in rows:
            if (
                row.get("algorithm") == algorithm
                and row.get("sim_ms") is not None
            ):
                total += row["sim_ms"]
                seen = True
    return round(total, 3) if seen else None


def _gg_sim_total(record: RunRecord) -> Optional[float]:
    return _algo_sim_total(record, "gg")


def _best_speedup(record: RunRecord) -> Optional[float]:
    """Largest shared-vs-separate speedup across the figure sweeps."""
    best: Optional[float] = None
    for rows in record.figures.values():
        for row in rows:
            speedup = row.get("speedup")
            if speedup is not None and (best is None or speedup > best):
                best = speedup
    return best


def _cell(value: object, fmt: str = "{}") -> str:
    return "-" if value is None else fmt.format(value)


def _profile_name(record: RunRecord) -> Optional[str]:
    if not record.profile:
        return None
    label = record.profile.get("label", "?")
    digest = record.profile.get("digest", "")
    return f"{label}@{digest[:8]}" if digest else str(label)


def render_plan_quality(
    records: Sequence[Tuple[PathLike, RunRecord]],
) -> str:
    """The per-algorithm plan-quality table: Q-error p50/p95 over each
    algorithm's executed classes and the count of misrankings in which the
    model wrongly preferred that algorithm's plan (see
    :meth:`CalibrationReport.algorithm_summary
    <repro.obs.analyze.CalibrationReport.algorithm_summary>`).  Records
    written before the per-algorithm summary existed are skipped; an empty
    result is the empty string so the caller can splice it conditionally.
    """
    lines: List[str] = []
    for path, record in sorted(records, key=lambda item: str(item[0])):
        algos = record.calibration.get("algorithms")
        if not isinstance(algos, dict) or not algos:
            continue
        for name in sorted(algos):
            row = algos[name]
            if not isinstance(row, dict):
                continue
            lines.append(
                "| {} | {} | {} | {} | {} | {} |".format(
                    Path(path).name,
                    name,
                    _cell(row.get("n_classes")),
                    _cell(row.get("q_error_p50")),
                    _cell(row.get("q_error_p95")),
                    _cell(row.get("misrankings")),
                )
            )
    if not lines:
        return ""
    header = [
        "| record | algorithm | classes | q-error p50 | q-error p95 "
        "| mispreferred |",
        "|---|---|---|---|---|---|",
    ]
    return "\n".join(header + lines)


def render_leaderboard(
    records: Sequence[Tuple[PathLike, RunRecord]],
) -> str:
    """The leaderboard as markdown, fastest wall clock first: the headline
    table, then (when any record carries per-algorithm calibration data)
    the plan-quality table.

    Simulated columns are byte-comparable across rows that share a
    fingerprint; wall seconds are environment-dependent context.  The
    ``profile`` column names the calibration profile a record ran under
    (``label@digest``), ``-`` for hand-set default rates.
    """
    if not records:
        raise ValueError("no benchmark records to render")

    def sort_key(item: Tuple[PathLike, RunRecord]) -> Tuple[int, float, str]:
        path, record = item
        wall = record.wall.get("total_s")
        return (wall is None, wall if wall is not None else 0.0, str(path))

    lines = [
        "| record | path | profile | recorded | wall s | gg sim-ms "
        "| dag sim-ms | best speedup | q-error p95 | misrankings |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for path, record in sorted(records, key=sort_key):
        lines.append(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |".format(
                Path(path).name,
                _PATH_NAMES.get(record.kernels, "?"),
                _cell(_profile_name(record)),
                record.created_at or "-",
                _cell(record.wall.get("total_s"), "{:.2f}"),
                _cell(_gg_sim_total(record), "{:.1f}"),
                _cell(_algo_sim_total(record, "dag"), "{:.1f}"),
                _cell(_best_speedup(record), "{:.2f}x"),
                _cell(record.calibration.get("q_error_p95")),
                _cell(record.calibration.get("misrankings")),
            )
        )
    table = "\n".join(lines)
    quality = render_plan_quality(records)
    if quality:
        table += "\n\nPer-algorithm plan quality (mispreferred = misrankings "
        table += "where the model wrongly preferred this algorithm's plan):\n\n"
        table += quality
    return table
