"""CSV export for benchmark results (plotting-friendly).

Every harness row type knows how to flatten itself; ``write_csv`` takes any
sequence of dataclass-like rows and writes one file per call.  Used by the
benchmarks when ``REPRO_BENCH_EXPORT`` names a directory, and available to
users who want to plot the figures with their own tooling.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Iterable, List, Sequence


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


def _flatten(row) -> dict:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        out = {}
        for field in dataclasses.fields(row):
            value = getattr(row, field.name)
            if _is_scalar(value):
                out[field.name] = value
            elif dataclasses.is_dataclass(value) and not isinstance(
                value, type
            ):
                # One level of nesting: scalar fields of a nested dataclass
                # (e.g. a ClassExecution's IOStats) become dotted columns
                # like ``sim.io_ms``; deeper nesting is dropped.
                for inner in dataclasses.fields(value):
                    inner_value = getattr(value, inner.name)
                    if _is_scalar(inner_value):
                        out[f"{field.name}.{inner.name}"] = inner_value
        return out
    if isinstance(row, dict):
        return dict(row)
    if isinstance(row, (tuple, list)):
        return {f"col{i}": v for i, v in enumerate(row)}
    raise TypeError(f"cannot flatten row of type {type(row)!r}")


def write_csv(
    rows: Sequence,
    path: str | Path,
    extra: dict | None = None,
    fieldnames: Sequence[str] | None = None,
) -> Path:
    """Write ``rows`` (dataclasses, dicts, or tuples) to ``path`` as CSV.

    Nested dataclass fields are flattened one level into dotted columns
    (``sim.io_ms``); deeper nesting is dropped.  ``extra`` adds constant
    columns (e.g. the bench scale) to every row.  With no rows the call
    raises :class:`ValueError` — unless ``fieldnames`` is given, in which
    case a header-only CSV is written (useful for appending later).
    """
    rows = list(rows)
    if not rows and fieldnames is None:
        raise ValueError(
            "nothing to export: rows is empty; pass fieldnames=[...] to "
            "write a header-only CSV instead"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    flattened: List[dict] = []
    for row in rows:
        record = _flatten(row)
        if extra:
            record.update(extra)
        flattened.append(record)
    if fieldnames is None:
        fieldnames = list(flattened[0])
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fieldnames))
        writer.writeheader()
        for record in flattened:
            writer.writerow(record)
    return path


def read_csv(path: str | Path) -> List[dict]:
    """Read back a CSV written by :func:`write_csv` (strings preserved)."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))
