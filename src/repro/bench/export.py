"""CSV export for benchmark results (plotting-friendly).

Every harness row type knows how to flatten itself; ``write_csv`` takes any
sequence of dataclass-like rows and writes one file per call.  Used by the
benchmarks when ``REPRO_BENCH_EXPORT`` names a directory, and available to
users who want to plot the figures with their own tooling.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Iterable, List, Sequence


def _flatten(row) -> dict:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        out = {}
        for field in dataclasses.fields(row):
            value = getattr(row, field.name)
            if isinstance(value, (int, float, str, bool)) or value is None:
                out[field.name] = value
        return out
    if isinstance(row, dict):
        return dict(row)
    if isinstance(row, (tuple, list)):
        return {f"col{i}": v for i, v in enumerate(row)}
    raise TypeError(f"cannot flatten row of type {type(row)!r}")


def write_csv(
    rows: Sequence, path: str | Path, extra: dict | None = None
) -> Path:
    """Write ``rows`` (dataclasses, dicts, or tuples) to ``path`` as CSV.

    ``extra`` adds constant columns (e.g. the bench scale) to every row.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    flattened: List[dict] = []
    for row in rows:
        record = _flatten(row)
        if extra:
            record.update(extra)
        flattened.append(record)
    fieldnames = list(flattened[0])
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in flattened:
            writer.writerow(record)
    return path


def read_csv(path: str | Path) -> List[dict]:
    """Read back a CSV written by :func:`write_csv` (strings preserved)."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))
