"""Persistent benchmark telemetry: structured run records and regression
gating.

A :class:`RunRecord` captures one benchmark run of the paper workload —
per-figure sharing rows, per-test algorithm comparisons (Table 2), the
cost-model calibration summary (Q-error quantiles and misranking count from
:mod:`repro.obs.analyze`), and a schema+config fingerprint — and persists
it as ``BENCH_<label>.json``.  Simulated costs are deterministic, so two
records with the same fingerprint are byte-comparable: any drift is a real
behavioural change, not noise.

:func:`compare_records` is the regression gate: it walks the shared
metrics of two records and flags every one that moved past its per-metric
threshold (:data:`DEFAULT_THRESHOLDS`).  Wall-clock fields are recorded
for context but never gated — only the deterministic cost clock and the
calibration summary gate.

CLI: ``repro bench --record`` / ``repro bench --compare --baseline FILE``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..obs.analyze import run_calibration

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import Database

PathLike = Union[str, Path]

#: Format version of the persisted record; bump on breaking layout change.
RECORD_VERSION = 1

#: Per-metric regression thresholds.  Relative metrics are the allowed
#: fractional worsening (0.10 = latest may be up to 10% worse); absolute
#: metrics (``misrankings``, ``n_classes``) allow no increase at all.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "sim_ms": 0.10,
    "est_ms": 0.10,
    "shared_ms": 0.10,
    "separate_ms": 0.10,
    "q_error_p95": 0.25,
    "q_error_max": 0.50,
    "misrankings": 0.0,
    "n_classes": 0.0,
}


def database_fingerprint(db: "Database", scale: Optional[float] = None) -> dict:
    """Schema + configuration identity of a run: two records gate against
    each other only when their fingerprints match (same dimensions, same
    tables, same cost rates — otherwise cost deltas are meaningless)."""
    from dataclasses import asdict

    schema = db.schema
    out = {
        "schema": schema.name,
        "dimensions": [
            {
                "name": dim.name,
                "levels": [level.name for level in dim.levels],
                "members": [dim.n_members(lv) for lv in range(dim.n_levels)],
            }
            for dim in schema.dimensions
        ],
        "tables": {
            entry.name: {"rows": entry.n_rows, "pages": entry.n_pages}
            for entry in db.catalog.entries()
        },
        "rates": asdict(db.stats.rates),
        "page_size": db.page_size,
        "scale": scale,
    }
    # A loaded calibration profile is part of the run's identity even
    # though its rates are already captured above: two *different*
    # profiles could fit identical rates tomorrow, and — more importantly —
    # the profile label says *why* the rates differ.  The key is added
    # only when a profile is loaded, so records written before this field
    # existed (and default-rates records generally) keep their exact
    # fingerprints and continue to gate.
    profile = getattr(db, "calibration_profile", None)
    if profile is not None:
        out["profile"] = profile.identity()
    return out


@dataclass
class RunRecord:
    """One persisted benchmark run."""

    label: str
    created_at: str
    fingerprint: dict
    #: figure name -> list of sharing-row dicts (Figures 10–12).
    figures: Dict[str, List[dict]] = field(default_factory=dict)
    #: test name -> list of per-algorithm dicts (Table 2).
    tests: Dict[str, List[dict]] = field(default_factory=dict)
    #: Calibration summary (see CalibrationReport.summary()).
    calibration: dict = field(default_factory=dict)
    #: Execution path of the run: True = columnar kernels, False = the
    #: per-tuple fallback, None = recorded before the flag existed.
    #: Deliberately *not* part of the fingerprint — both paths produce the
    #: same simulated costs, so their records gate against each other.
    kernels: Optional[bool] = None
    #: Identity of the calibration profile the run was recorded under
    #: (``{"label", "digest"}``), or None for hand-set default rates.
    #: Unlike ``kernels`` this IS mirrored in the fingerprint: fitted
    #: rates change simulated costs, so profiled and unprofiled records
    #: must never gate each other.
    profile: Optional[dict] = None
    #: Wall-clock seconds (context only, never gated):
    #: ``{"figures_s", "calibration_s", "total_s"}``.
    wall: Dict[str, float] = field(default_factory=dict)
    version: int = RECORD_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "label": self.label,
            "created_at": self.created_at,
            "fingerprint": self.fingerprint,
            "kernels": self.kernels,
            "profile": self.profile,
            "wall": self.wall,
            "figures": self.figures,
            "tests": self.tests,
            "calibration": self.calibration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Build a record from parsed JSON, validating field *types*.

        A committed record whose layout has drifted (a ``wall`` list, a
        string ``total_s``, non-dict test rows, …) must fail here with a
        :class:`ValueError` naming the bad field — not as an
        ``AttributeError``/``TypeError`` traceback deep inside the
        leaderboard renderer or the regression gate.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"record must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version", 0)
        if not isinstance(version, int):
            raise ValueError(
                f"field 'version' must be an integer, got "
                f"{type(version).__name__}"
            )
        if version > RECORD_VERSION:
            raise ValueError(
                f"record version {version} is newer than supported "
                f"({RECORD_VERSION}); refusing to mis-compare"
            )
        record = cls(
            label=_typed(data, "label", str, "?"),
            created_at=_typed(data, "created_at", str, ""),
            fingerprint=_typed(data, "fingerprint", dict, {}),
            figures=_rows_by_name(data, "figures"),
            tests=_rows_by_name(data, "tests"),
            calibration=_typed(data, "calibration", dict, {}),
            kernels=data.get("kernels"),
            profile=data.get("profile"),
            wall=_typed(data, "wall", dict, {}),
            version=version,
        )
        if record.kernels is not None and not isinstance(record.kernels, bool):
            raise ValueError(
                f"field 'kernels' must be a boolean or null, got "
                f"{type(record.kernels).__name__}"
            )
        if record.profile is not None and not isinstance(record.profile, dict):
            raise ValueError(
                f"field 'profile' must be an object or null, got "
                f"{type(record.profile).__name__}"
            )
        for key, value in record.wall.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"field 'wall.{key}' must be a number, got "
                    f"{type(value).__name__}"
                )
        return record

    def save(self, path: PathLike) -> Path:
        """Write the record as indented JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "RunRecord":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _typed(data: dict, key: str, expected: type, default):
    """``data[key]`` when present and of ``expected`` type; the default
    when absent; :class:`ValueError` otherwise."""
    value = data.get(key, default)
    if not isinstance(value, expected):
        raise ValueError(
            f"field {key!r} must be a {expected.__name__}, got "
            f"{type(value).__name__}"
        )
    return value


def _rows_by_name(data: dict, key: str) -> Dict[str, List[dict]]:
    """Validate a ``{name: [row-dict, ...]}`` mapping (figures / tests)."""
    section = _typed(data, key, dict, {})
    for name, rows in section.items():
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise ValueError(
                f"field {key!r}[{name!r}] must be a list of objects"
            )
    return section


def default_record_path(label: str, directory: Optional[PathLike] = None) -> Path:
    """``BENCH_<label>.json`` in ``directory`` (default: current dir — the
    repo root when invoked from a checkout)."""
    base = Path(directory) if directory is not None else Path.cwd()
    return base / f"BENCH_{label}.json"


def record_run(
    db: Optional["Database"] = None,
    label: str = "paper",
    scale: float = 0.01,
    tests: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    figures: bool = True,
    kernels: bool = True,
    profile=None,
) -> RunRecord:
    """Run the paper workload and build its telemetry record.

    ``db`` defaults to a freshly built paper database at ``scale``;
    ``kernels=False`` builds it on the per-tuple execution path (ignored
    when ``db`` is given — the database's own flag wins).  ``tests``
    restricts the calibration/Table-2 sweep (see
    :data:`repro.obs.analyze.CALIBRATION_TESTS`); ``figures=False`` skips
    the Figures 10–12 sharing sweeps (the slow part at larger scales).
    ``profile`` (a :class:`repro.calibrate.profile.CalibrationProfile`)
    applies fitted cost rates to the database before the run and stamps the
    record — and its fingerprint — with the profile's identity.
    """
    from ..workload.paper_queries import paper_queries
    from .harness import (
        run_test1_shared_scan,
        run_test2_shared_index,
        run_test3_hybrid,
    )

    if db is None:
        from ..workload.paper_schema import build_paper_database

        db = build_paper_database(scale=scale, kernels=kernels)
    if profile is not None:
        db.apply_profile(profile)
    active_profile = getattr(db, "calibration_profile", None)
    started = time.perf_counter()
    record = RunRecord(
        label=label,
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        fingerprint=database_fingerprint(db, scale=scale),
        kernels=bool(getattr(db, "kernels", True)),
        profile=(
            active_profile.identity() if active_profile is not None else None
        ),
    )
    queries = paper_queries(db.schema)
    if figures:
        sweeps = {
            "fig10_shared_scan": run_test1_shared_scan(
                db, [queries[i] for i in (1, 2, 3, 4)]
            ),
            "fig11_shared_index": run_test2_shared_index(
                db, [queries[i] for i in (5, 8, 6, 7)]
            ),
            "fig12_hybrid": run_test3_hybrid(
                db, [queries[3]], [queries[5], queries[6], queries[7]]
            ),
        }
        for name, rows in sweeps.items():
            record.figures[name] = [
                {
                    "n_queries": row.n_queries,
                    "separate_ms": round(row.separate_ms, 3),
                    "shared_ms": round(row.shared_ms, 3),
                    "speedup": round(row.speedup, 4),
                    "separate_wall_s": round(row.separate_wall_s, 6),
                    "shared_wall_s": round(row.shared_wall_s, 6),
                }
                for row in rows
            ]
        record.wall["figures_s"] = round(time.perf_counter() - started, 6)
    calibration_started = time.perf_counter()
    calibration = run_calibration(db, tests=tests, algorithms=algorithms)
    record.calibration = calibration.summary()
    record.wall["calibration_s"] = round(
        time.perf_counter() - calibration_started, 6
    )
    for outcome in calibration.plans:
        record.tests.setdefault(outcome.test, []).append(
            {
                "algorithm": outcome.algorithm,
                "est_ms": round(outcome.est_ms, 3),
                "sim_ms": round(outcome.actual_ms, 3),
                "n_classes": outcome.plan.count(";") + 1 if outcome.plan else 0,
                "plan": outcome.plan,
            }
        )
    record.wall["total_s"] = round(time.perf_counter() - started, 6)
    return record


@dataclass
class Regression:
    """One gated metric that worsened past its threshold."""

    metric: str
    context: str
    baseline: float
    latest: float
    threshold: float

    @property
    def change(self) -> float:
        """Fractional change (positive = worse) for relative metrics; raw
        delta for absolute ones (threshold 0)."""
        if self.threshold == 0.0 or self.baseline == 0.0:
            return self.latest - self.baseline
        return self.latest / self.baseline - 1.0

    def describe(self) -> str:
        if self.threshold == 0.0 or self.baseline == 0.0:
            return (
                f"{self.context}: {self.metric} {self.baseline:g} -> "
                f"{self.latest:g} (any increase gates)"
            )
        return (
            f"{self.context}: {self.metric} {self.baseline:g} -> "
            f"{self.latest:g} ({self.change * 100:+.1f}%, allowed "
            f"+{self.threshold * 100:.0f}%)"
        )


@dataclass
class RegressionReport:
    """Outcome of comparing a run record against a baseline."""

    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    n_compared: int = 0
    fingerprint_mismatch: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.fingerprint_mismatch is None and not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        if self.fingerprint_mismatch is not None:
            lines.append(
                f"INCOMPARABLE: {self.fingerprint_mismatch}"
            )
        lines.append(
            f"compared {self.n_compared} metric(s): "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        for reg in self.regressions:
            lines.append(f"  REGRESSION {reg.describe()}")
        for imp in self.improvements:
            lines.append(f"  improved   {imp.describe()}")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _gate(
    report: RegressionReport,
    thresholds: Dict[str, float],
    metric: str,
    context: str,
    baseline: Optional[float],
    latest: Optional[float],
) -> None:
    """Compare one metric pair; higher is always worse for gated metrics."""
    if baseline is None or latest is None:
        return
    threshold = thresholds.get(metric)
    if threshold is None:
        return
    report.n_compared += 1
    entry = Regression(
        metric=metric,
        context=context,
        baseline=float(baseline),
        latest=float(latest),
        threshold=threshold,
    )
    if threshold == 0.0 or baseline == 0.0:
        if latest > baseline:
            report.regressions.append(entry)
        elif latest < baseline:
            report.improvements.append(entry)
        return
    if latest > baseline * (1.0 + threshold):
        report.regressions.append(entry)
    elif latest < baseline * (1.0 - threshold):
        report.improvements.append(entry)


def compare_records(
    latest: RunRecord,
    baseline: RunRecord,
    thresholds: Optional[Dict[str, float]] = None,
) -> RegressionReport:
    """Gate ``latest`` against ``baseline`` with per-metric thresholds.

    Only metrics present in *both* records are compared (a baseline from a
    narrower sweep gates what it has).  Mismatched fingerprints make the
    comparison fail outright: cost deltas between different schemas,
    scales, or rates are not regressions, they are different experiments.
    """
    thresholds = dict(DEFAULT_THRESHOLDS, **(thresholds or {}))
    report = RegressionReport()
    if latest.fingerprint != baseline.fingerprint:
        differing = sorted(
            key
            for key in set(latest.fingerprint) | set(baseline.fingerprint)
            if latest.fingerprint.get(key) != baseline.fingerprint.get(key)
        )
        report.fingerprint_mismatch = (
            f"fingerprints differ on {differing}; re-record the baseline at "
            f"the same schema/scale/rates before gating"
        )
        return report
    for test, latest_rows in sorted(latest.tests.items()):
        baseline_rows = {
            row["algorithm"]: row for row in baseline.tests.get(test, [])
        }
        for row in latest_rows:
            base = baseline_rows.get(row["algorithm"])
            if base is None:
                continue
            context = f"{test}/{row['algorithm']}"
            for metric in ("sim_ms", "est_ms", "n_classes"):
                _gate(
                    report, thresholds, metric, context,
                    base.get(metric), row.get(metric),
                )
    for figure, latest_rows in sorted(latest.figures.items()):
        baseline_rows = {
            row["n_queries"]: row for row in baseline.figures.get(figure, [])
        }
        for row in latest_rows:
            base = baseline_rows.get(row["n_queries"])
            if base is None:
                continue
            context = f"{figure}/k={row['n_queries']}"
            for metric in ("shared_ms", "separate_ms"):
                _gate(
                    report, thresholds, metric, context,
                    base.get(metric), row.get(metric),
                )
    for metric in ("q_error_p95", "q_error_max", "misrankings"):
        _gate(
            report, thresholds, metric, "calibration",
            baseline.calibration.get(metric),
            latest.calibration.get(metric),
        )
    return report
