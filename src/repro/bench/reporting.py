"""Plain-text tables for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_series(
    label: str, xs: Sequence[object], ys: Sequence[float]
) -> str:
    """One named series, e.g. for a figure's bars."""
    points = ", ".join(f"{x}={y:.1f}" for x, y in zip(xs, ys))
    return f"{label}: {points}"
