"""Benchmark harness: regenerates every table and figure of the paper."""

from .harness import (
    AlgorithmRow,
    DEFAULT_ALGORITHMS,
    ForcedRun,
    SharingRow,
    run_algorithm_comparison,
    run_forced_class,
    run_separately,
    run_test1_shared_scan,
    run_test2_shared_index,
    run_test3_hybrid,
    table1_rows,
)
from .history import (
    DEFAULT_THRESHOLDS,
    Regression,
    RegressionReport,
    RunRecord,
    compare_records,
    database_fingerprint,
    default_record_path,
    record_run,
)
from .reporting import format_series, format_table

__all__ = [
    "AlgorithmRow",
    "DEFAULT_ALGORITHMS",
    "DEFAULT_THRESHOLDS",
    "ForcedRun",
    "Regression",
    "RegressionReport",
    "RunRecord",
    "SharingRow",
    "compare_records",
    "database_fingerprint",
    "default_record_path",
    "record_run",
    "format_series",
    "format_table",
    "run_algorithm_comparison",
    "run_forced_class",
    "run_separately",
    "run_test1_shared_scan",
    "run_test2_shared_index",
    "run_test3_hybrid",
    "table1_rows",
]
