"""Computing materialized group-bys (precomputed aggregates).

OLAP systems speed dimensional queries by precomputing group-bys (the paper's
Section 1 cites the cubing / view-selection literature).  This module
computes a target group-by from the finest available source — materialization
is an offline precomputation step, so it does not charge the query cost
clock.  Output rows are sorted by dimension key order, which matches how a
cube build would cluster its output and gives index probes the page locality
the paper's Test 2 relies on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..schema.lattice import aggregate_compatible, effective_aggregate
from ..schema.query import Aggregate
from ..schema.star import StarSchema
from ..storage.catalog import TableEntry
from ..storage.table import HeapTable


def compute_groupby_rows(
    schema: StarSchema,
    source: TableEntry,
    target_levels: Sequence[int],
    aggregate: Aggregate = Aggregate.SUM,
) -> List[Tuple]:
    """Aggregate ``source`` to ``target_levels``.

    The target must be derivable: every target level must be
    coarser-or-equal to the source's stored level on that dimension, and
    ``aggregate`` must re-aggregate over the source's measure (any
    aggregate over raw base data; only the same aggregate over a view,
    with COUNT views re-aggregating by summing their counts).
    Returns rows ``(key_0, …, key_{n-1}, value)`` sorted by key.
    """
    target_levels = schema.check_levels(target_levels)
    if aggregate is Aggregate.AVG:
        raise ValueError(
            "AVG is not re-aggregable; materialize SUM and COUNT views "
            "instead (AVG queries always read a raw or derived pair)"
        )
    if not aggregate_compatible(aggregate, source.source_aggregate):
        raise ValueError(
            f"cannot build a {aggregate.value.upper()} group-by from "
            f"{source.name!r}, whose measure holds "
            f"{source.source_aggregate!r} rollups"
        )
    fold = effective_aggregate(aggregate, source.source_aggregate)
    for dim, src_level, dst_level in zip(
        schema.dimensions, source.levels, target_levels
    ):
        if dst_level < src_level:
            raise ValueError(
                f"cannot derive level {dst_level} of {dim.name!r} from a "
                f"source stored at level {src_level}"
            )
    n_dims = schema.n_dims
    rows = list(source.table.all_rows())
    if not rows:
        return []
    matrix = np.asarray(rows, dtype=np.float64)
    measures = matrix[:, n_dims]
    key_columns: List[np.ndarray] = []
    sizes: List[int] = []
    for d, dim in enumerate(schema.dimensions):
        keys = matrix[:, d].astype(np.int64)
        if target_levels[d] == dim.all_level:
            keys = np.zeros_like(keys)
        elif target_levels[d] != source.levels[d]:
            keys = dim.rollup_map(source.levels[d], target_levels[d])[keys]
        key_columns.append(keys)
        sizes.append(dim.n_members(target_levels[d]))
    strides = np.ones(n_dims, dtype=np.int64)
    for d in range(n_dims - 2, -1, -1):
        strides[d] = strides[d + 1] * sizes[d + 1]
    codes = sum(col * stride for col, stride in zip(key_columns, strides))
    uniq, inverse = np.unique(codes, return_inverse=True)
    if fold is Aggregate.SUM:
        folded = np.bincount(inverse, weights=measures, minlength=uniq.size)
    elif fold is Aggregate.COUNT:
        folded = np.bincount(inverse, minlength=uniq.size).astype(np.float64)
    else:
        ufunc = np.minimum if fold is Aggregate.MIN else np.maximum
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(
            inverse[order], np.arange(uniq.size), side="left"
        )
        folded = ufunc.reduceat(measures[order], boundaries)
    out: List[Tuple] = []
    for code, total in zip(uniq.tolist(), folded.tolist()):
        key = []
        for d in range(n_dims):
            key.append(int(code // strides[d]) % sizes[d] if sizes[d] > 1 else 0)
        out.append(tuple(key) + (total,))
    return out


def pick_materialization_source(
    schema: StarSchema,
    entries: Sequence[TableEntry],
    target_levels: Sequence[int],
    aggregate: Aggregate = Aggregate.SUM,
) -> TableEntry:
    """Choose the cheapest (fewest-rows) existing table able to derive the
    target group-by with the given aggregate."""
    target_levels = tuple(target_levels)
    usable: List[TableEntry] = []
    for entry in entries:
        if all(s <= t for s, t in zip(entry.levels, target_levels)) and (
            aggregate_compatible(aggregate, entry.source_aggregate)
        ):
            usable.append(entry)
    if not usable:
        raise ValueError(
            f"no registered table can derive a {aggregate.value.upper()} "
            f"group-by at levels {target_levels}"
        )
    return min(usable, key=lambda e: (e.n_rows, e.name))


def build_groupby_table(
    schema: StarSchema,
    source: TableEntry,
    target_levels: Sequence[int],
    name: str,
    page_size: int,
    measure_column: Optional[str] = None,
    aggregate: Aggregate = Aggregate.SUM,
) -> HeapTable:
    """Materialize a group-by into a new (sorted) heap table."""
    columns = [dim.name for dim in schema.dimensions]
    columns.append(measure_column or schema.measure)
    table = HeapTable(name, columns, page_size=page_size)
    table.extend(
        compute_groupby_rows(schema, source, target_levels, aggregate)
    )
    return table
