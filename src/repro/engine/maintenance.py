"""Incremental maintenance of materialized group-bys and join indexes.

The paper's Section 1 motivates precomputation with the literature on
"techniques for effectively creating and maintaining materialized
group-bys".  This module supplies the maintenance half: appending a batch of
fact rows to the base table propagates, without recomputation, into

* every materialized group-by whose aggregate is insert-maintainable
  (SUM/COUNT/MIN/MAX all are — deletes would break MIN/MAX, and this
  engine's OLAP workload is append-only),
* every join index on the base table (new row positions are added to the
  affected members' bitmaps / RID lists).

Views are *not* kept sorted under maintenance: appended groups land at the
tail, so a maintained view loses the page-locality guarantee of a freshly
built one.  The catalog's ``clustered`` flag is cleared accordingly, and the
cost model stops assuming locality for it — exactly what a real system's
statistics would do.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..schema.query import Aggregate
from ..storage.catalog import TableEntry
from ..storage.page import Row


class MaintenanceError(RuntimeError):
    """A view or index cannot be incrementally maintained."""


def _fold_delta(
    aggregate: Aggregate,
    groups: Dict[Tuple[int, ...], float],
    key: Tuple[int, ...],
    value: float,
) -> None:
    if aggregate is Aggregate.SUM:
        groups[key] = groups.get(key, 0.0) + value
    elif aggregate is Aggregate.COUNT:
        groups[key] = groups.get(key, 0.0) + 1.0
    elif aggregate is Aggregate.MIN:
        groups[key] = min(groups.get(key, value), value)
    elif aggregate is Aggregate.MAX:
        groups[key] = max(groups.get(key, value), value)
    else:  # pragma: no cover - Aggregate is a closed enum
        raise NotImplementedError(aggregate)


def _merge_into_view(
    view: TableEntry,
    delta: Dict[Tuple[int, ...], float],
    aggregate: Aggregate,
) -> int:
    """Merge a per-group delta into a view's heap table in place.

    Existing groups are updated in their slots; new groups are appended.
    Returns the number of groups appended.
    """
    n_dims = len(view.levels)
    # Locate existing groups.  A real system would use the view's primary
    # index; here we build a transient key → (page, slot) map.
    positions: Dict[Tuple[int, ...], Tuple[int, int]] = {}
    for page in view.table._pages:  # noqa: SLF001 - engine-internal access
        for slot, row in enumerate(page.rows):
            positions[tuple(int(v) for v in row[:n_dims])] = (
                page.page_no,
                slot,
            )
    appended = 0
    for key, value in sorted(delta.items()):
        found = positions.get(key)
        if found is None:
            view.table.append(key + (value,))
            appended += 1
            continue
        page_no, slot = found
        row = view.table._pages[page_no].rows[slot]  # noqa: SLF001
        current = float(row[n_dims])
        if aggregate in (Aggregate.SUM, Aggregate.COUNT):
            merged = current + value
        elif aggregate is Aggregate.MIN:
            merged = min(current, value)
        else:
            merged = max(current, value)
        # Page.update also drops the page's cached columnar view.
        view.table._pages[page_no].update(slot, key + (merged,))  # noqa: SLF001
    return appended


def append_rows(
    db, rows: Iterable[Row], base_name: str | None = None
) -> Dict[str, int]:
    """Append fact rows to the base table and maintain every dependent view
    and index incrementally.

    Returns ``{table name: groups appended}`` (0 for updated-in-place-only
    views; the base table reports the row count).  Maintenance is offline
    work and is not charged to the query cost clock.
    """
    schema = db.schema
    if base_name is None:
        raw = [entry for entry in db.catalog.entries() if entry.is_raw]
        if not raw:
            raise MaintenanceError("the database has no raw base table")
        if len(raw) > 1:
            names = [entry.name for entry in raw]
            raise MaintenanceError(
                f"several raw tables exist ({names}); pass base_name"
            )
        base = raw[0]
        base_name = base.name
    else:
        base = db.catalog.get(base_name)
    if not base.is_raw:
        raise MaintenanceError(
            f"{base_name!r} is a materialized view, not a base table"
        )
    rows = [tuple(row) for row in rows]
    report: Dict[str, int] = {}
    if not rows:
        return report
    n_dims = schema.n_dims
    for row in rows:
        if len(row) != n_dims + 1:
            raise ValueError(
                f"fact rows need {n_dims + 1} fields, got {len(row)}"
            )
    first_position = base.table.n_rows

    # 1. Append to the base table, remembering each new row's position.
    for row in rows:
        base.table.append(row)

    # 2. Maintain the base table's join indexes.
    for (dim_index, level), index in base.indexes.items():
        _maintain_index(schema, index, dim_index, level, rows, first_position)

    # 3. Propagate a per-view delta into every materialized group-by.
    for entry in db.catalog.entries():
        if entry.is_raw:
            continue
        aggregate = Aggregate(entry.source_aggregate)
        delta: Dict[Tuple[int, ...], float] = {}
        rollups = [
            dim.rollup_map(0, level) if level not in (0, dim.all_level) else None
            for dim, level in zip(schema.dimensions, entry.levels)
        ]
        for row in rows:
            key: List[int] = []
            for d, (dim, level) in enumerate(
                zip(schema.dimensions, entry.levels)
            ):
                if level == dim.all_level:
                    key.append(0)
                elif level == 0:
                    key.append(int(row[d]))
                else:
                    key.append(int(rollups[d][int(row[d])]))
            _fold_delta(aggregate, delta, tuple(key), float(row[n_dims]))
        appended = _merge_into_view(entry, delta, aggregate)
        report[entry.name] = appended
        if appended:
            # Appended groups break the sorted invariant.
            entry.clustered = False
        if entry.indexes:
            _rebuild_view_indexes(db, entry)

    report[base_name] = len(rows)
    # Answers have changed: bump the mutation epoch so semantic result
    # caches invalidate even when this function is called directly rather
    # than through a wrapped Database.append_rows.
    db.notify_mutation()
    return report


def _maintain_index(schema, index, dim_index: int, level: int, rows, first_position: int) -> None:
    """Extend a base-table join index with the new rows."""
    from ..index.bitmap import Bitmap
    from ..index.bitmap_index import BitmapJoinIndex
    from ..index.btree import PositionListJoinIndex

    dim = schema.dimensions[dim_index]
    rollup = dim.rollup_map(0, level) if level else None
    new_total = first_position + len(rows)
    if isinstance(index, BitmapJoinIndex):
        # Grow every existing bitmap, then set the new bits.
        for member, bitmap in list(index._bitmaps.items()):  # noqa: SLF001
            grown = Bitmap.zeros(new_total)
            grown.words[: bitmap.n_words] = bitmap.words
            index._bitmaps[member] = grown  # noqa: SLF001
        index.n_rows = new_total
        for offset, row in enumerate(rows):
            key = int(row[dim_index])
            member = int(rollup[key]) if rollup is not None else key
            bitmap = index._bitmaps.get(member)  # noqa: SLF001
            if bitmap is None:
                bitmap = Bitmap.zeros(new_total)
                index._bitmaps[member] = bitmap  # noqa: SLF001
            bitmap.set(first_position + offset)
    elif isinstance(index, PositionListJoinIndex):
        additions: Dict[int, List[int]] = {}
        for offset, row in enumerate(rows):
            key = int(row[dim_index])
            member = int(rollup[key]) if rollup is not None else key
            additions.setdefault(member, []).append(first_position + offset)
        for member, positions in additions.items():
            existing = index._rid_lists.get(member)  # noqa: SLF001
            new = np.asarray(positions, dtype=np.int64)
            if existing is None:
                index._rid_lists[member] = new  # noqa: SLF001
            else:
                index._rid_lists[member] = np.concatenate(  # noqa: SLF001
                    [existing, new]
                )
        index.n_rows = new_total
    else:  # pragma: no cover - the two kinds above are the catalog's
        raise MaintenanceError(f"cannot maintain index type {type(index)!r}")


def _rebuild_view_indexes(db, entry: TableEntry) -> None:
    """Views gain and reorder rows under maintenance; their indexes are
    rebuilt from scratch (cheap: views are small)."""
    from ..index.bitmap_index import BitmapJoinIndex
    from ..index.btree import PositionListJoinIndex

    schema = db.schema
    rebuilt = {}
    for (dim_index, level), old in entry.indexes.items():
        dim = schema.dimensions[dim_index]
        stored = entry.levels[dim_index]
        builder = (
            BitmapJoinIndex
            if isinstance(old, BitmapJoinIndex)
            else PositionListJoinIndex
        )
        rebuilt[(dim_index, level)] = builder.build(
            entry.table,
            entry.name,
            dim_index,
            level,
            column_index=dim_index,
            key_to_member=dim.rollup_map(stored, level),
            n_members=dim.n_members(level),
        )
    entry.indexes.clear()
    entry.indexes.update(rebuilt)
