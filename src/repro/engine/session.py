"""Query sessions: batch several MDX expressions, deduplicate their
component queries, and optimize the whole batch as one unit.

The paper optimizes the component queries of *one* MDX expression; a client
session usually issues several related expressions (a dashboard refresh, a
drill-down sequence).  Two natural extensions, both implemented here:

* **Cross-expression optimization** — the union of all component queries is
  handed to one optimizer run, so sharing is found across expressions, not
  just within one.
* **Duplicate elimination** — different expressions frequently denote some
  identical component queries (same target group-by, same predicates, same
  aggregate).  Each distinct query is planned and evaluated once; results
  fan back out to every submission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.executor import ExecutionReport
from ..core.operators.results import QueryResult
from ..schema.query import GroupByQuery
from .database import Database

#: Semantic identity of a query (label and qid excluded).
QueryKey = Tuple[Tuple[int, ...], frozenset, str]


def query_key(query: GroupByQuery) -> QueryKey:
    """Semantic identity of a query (levels, predicates, aggregate)."""
    return (
        query.groupby.levels,
        frozenset(query.predicates),
        query.aggregate.value,
    )


@dataclass
class SessionReport:
    """The outcome of one session run."""

    execution: ExecutionReport
    #: Results for every *submitted* query (duplicates included), by qid.
    results: Dict[int, QueryResult] = field(default_factory=dict)
    n_submitted: int = 0
    n_distinct: int = 0

    @property
    def n_duplicates_eliminated(self) -> int:
        """Submitted minus distinct query count."""
        return self.n_submitted - self.n_distinct

    def result_for(self, query: GroupByQuery) -> QueryResult:
        """The result of one submitted query, by its qid."""
        return self.results[query.qid]

    def summary(self) -> str:
        """One-line summary for logs and console output."""
        return (
            f"session: {self.n_submitted} submitted, "
            f"{self.n_distinct} distinct "
            f"({self.n_duplicates_eliminated} duplicate(s) eliminated); "
            + self.execution.summary()
        )


class QuerySession:
    """Collects queries (directly or via MDX) and runs them as one batch."""

    def __init__(self, db: Database, algorithm: str = "gg"):
        self.db = db
        self.algorithm = algorithm
        self._submitted: List[GroupByQuery] = []

    # -- collecting -----------------------------------------------------------

    def add_queries(self, queries: Sequence[GroupByQuery]) -> "QuerySession":
        """Queue queries for the next run (validated immediately)."""
        for query in queries:
            query.validate(self.db.schema)
            self._submitted.append(query)
        return self

    def add_mdx(self, text: str, label_prefix: Optional[str] = None) -> "QuerySession":
        """Translate an MDX expression and queue its component queries."""
        from ..mdx import translate_mdx

        prefix = label_prefix or f"mdx{len(self._submitted)}"
        self.add_queries(
            translate_mdx(self.db.schema, text, prefix, tracer=self.db.tracer)
        )
        return self

    @property
    def n_pending(self) -> int:
        """Number of queries queued in the session."""
        return len(self._submitted)

    def clear(self) -> None:
        """Drop all pending queries."""
        self._submitted.clear()

    # -- running --------------------------------------------------------------

    def run(self, cold: bool = True) -> SessionReport:
        """Deduplicate, optimize the distinct set as one unit, execute, and
        fan results back to every submission.  The pending set is cleared."""
        if not self._submitted:
            raise ValueError("the session has no queries to run")
        canonical: Dict[QueryKey, GroupByQuery] = {}
        members: Dict[QueryKey, List[GroupByQuery]] = {}
        for query in self._submitted:
            key = query_key(query)
            canonical.setdefault(key, query)
            members.setdefault(key, []).append(query)
        distinct = list(canonical.values())
        with self.db.tracer.span(
            "session.run",
            algorithm=self.algorithm,
            n_submitted=len(self._submitted),
            n_distinct=len(distinct),
        ):
            plan = self.db.optimize(distinct, self.algorithm)
            execution = self.db.execute(plan, cold=cold)
        report = SessionReport(
            execution=execution,
            n_submitted=len(self._submitted),
            n_distinct=len(distinct),
        )
        for key, representative in canonical.items():
            result = execution.results[representative.qid]
            for twin in members[key]:
                # Each fan-out gets its own groups dict: results are treated
                # as owned values, never shared mutable state.
                report.results[twin.qid] = QueryResult(
                    query=twin, groups=dict(result.groups)
                )
        self.clear()
        return report
