"""Loading fact data from CSV files.

Real fact feeds carry *member names* ("Venkatrao", "Tokyo", "Mar"), not the
engine's dense ids.  ``load_csv`` maps name columns to leaf-level member
ids through the schema's hierarchies (a value naming a coarser member is
rejected with a precise error — facts must arrive at the grain of the base
table), parses the measure, and either loads a new base table or appends to
an existing one through the incremental-maintenance path.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..schema.star import StarSchema
from ..storage.page import Row


class CsvLoadError(ValueError):
    """A row that cannot be mapped onto the schema, with line context."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def rows_from_csv(
    schema: StarSchema,
    path: str | Path,
    dimension_columns: Optional[Dict[str, str]] = None,
    measure_column: Optional[str] = None,
) -> List[Row]:
    """Parse a CSV file into fact rows.

    ``dimension_columns`` maps dimension names to CSV column names (default:
    same names); ``measure_column`` defaults to the schema's measure name.
    Every dimension value must name a *leaf-level* member.
    """
    if dimension_columns is None:
        dimension_columns = {d.name: d.name for d in schema.dimensions}
    measure_column = measure_column or schema.measure
    missing_dims = [
        d.name for d in schema.dimensions if d.name not in dimension_columns
    ]
    if missing_dims:
        raise ValueError(
            f"dimension_columns lacks a mapping for {missing_dims}"
        )

    rows: List[Row] = []
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no header row")
        header = set(reader.fieldnames)
        wanted = set(dimension_columns.values()) | {measure_column}
        absent = sorted(wanted - header)
        if absent:
            raise ValueError(
                f"{path} is missing column(s) {absent}; header has "
                f"{sorted(header)}"
            )
        for line, record in enumerate(reader, start=2):
            keys: List[int] = []
            for dim in schema.dimensions:
                column = dimension_columns[dim.name]
                name = (record[column] or "").strip()
                if not name:
                    raise CsvLoadError(
                        f"empty value in column {column!r}", line
                    )
                if not dim.has_member(name):
                    raise CsvLoadError(
                        f"{name!r} is not a member of dimension "
                        f"{dim.name!r}", line,
                    )
                level, member = dim.find_member(name)
                if level != 0:
                    raise CsvLoadError(
                        f"{name!r} is a {dim.level_name(level)}-level "
                        f"member; facts must name leaf-level "
                        f"({dim.level_name(0)}) members", line,
                    )
                keys.append(member)
            raw = (record[measure_column] or "").strip()
            try:
                measure = float(raw)
            except ValueError:
                raise CsvLoadError(
                    f"cannot parse measure {raw!r} in column "
                    f"{measure_column!r}", line,
                ) from None
            rows.append(tuple(keys) + (measure,))
    return rows


def load_csv(
    db,
    path: str | Path,
    table_name: Optional[str] = None,
    dimension_columns: Optional[Dict[str, str]] = None,
    measure_column: Optional[str] = None,
    append: bool = False,
) -> int:
    """Load a CSV fact feed into ``db``.

    With ``append=False`` (default) a new base table is created
    (``table_name`` defaults to the schema's group-by notation); with
    ``append=True`` the rows go through :meth:`Database.append_rows`, so
    existing views and indexes are maintained incrementally.
    Returns the number of rows loaded.
    """
    rows = rows_from_csv(
        db.schema, path,
        dimension_columns=dimension_columns,
        measure_column=measure_column,
    )
    if append:
        db.append_rows(rows)
    else:
        db.load_base(rows, name=table_name)
    return len(rows)
