"""Render group-by queries as the SQL a ROLAP engine would receive.

The paper treats MDX and SQL interchangeably for its component queries
(Section 2: each component query is "a star join query followed by an
aggregation").  This module renders a :class:`GroupByQuery` in that star-join
SQL form, mainly for display in examples and EXPLAIN output.
"""

from __future__ import annotations

from typing import List

from ..schema.query import GroupByQuery
from ..schema.star import StarSchema


def level_column(schema: StarSchema, dim_index: int, level: int) -> str:
    """Column reference for one hierarchy level, e.g. ``Adim.A_1`` for A'."""
    dim = schema.dimensions[dim_index]
    if level == dim.all_level:
        raise ValueError("the ALL level has no column")
    suffix = f"_{level}" if level else ""
    return f"{dim.name}dim.{dim.name}{suffix}"


def to_sql(schema: StarSchema, query: GroupByQuery, fact_table: str) -> str:
    """A readable star-join SQL rendering of ``query`` against
    ``fact_table``."""
    select: List[str] = []
    group_by: List[str] = []
    joins: List[str] = []
    where: List[str] = []
    joined_dims = set()

    def need_dim(dim_index: int) -> None:
        """Register the dimension-table join once per dimension."""
        if dim_index in joined_dims:
            return
        joined_dims.add(dim_index)
        dim = schema.dimensions[dim_index]
        joins.append(
            f"JOIN {dim.name}dim ON {dim.name}dim.{dim.name} = "
            f"{fact_table}.{dim.name}"
        )

    for dim_index, dim in enumerate(schema.dimensions):
        level = query.groupby.levels[dim_index]
        if level != dim.all_level:
            if level == 0:
                column = f"{fact_table}.{dim.name}"
            else:
                need_dim(dim_index)
                column = level_column(schema, dim_index, level)
            select.append(column)
            group_by.append(column)

    for pred in query.predicates:
        dim = schema.dimensions[pred.dim_index]
        if pred.level == 0:
            column = f"{fact_table}.{dim.name}"
        else:
            need_dim(pred.dim_index)
            column = level_column(schema, pred.dim_index, pred.level)
        names = sorted(
            dim.member_name(pred.level, member) for member in pred.member_ids
        )
        quoted = ", ".join(f"'{n}'" for n in names)
        where.append(f"{column} IN ({quoted})")

    select.append(f"{query.aggregate.value.upper()}({fact_table}.{schema.measure})")
    sql = [f"SELECT {', '.join(select)}", f"FROM {fact_table}"]
    sql.extend(joins)
    if where:
        sql.append("WHERE " + " AND ".join(where))
    if group_by:
        sql.append("GROUP BY " + ", ".join(group_by))
    return "\n".join(sql)
