"""Table statistics: measured dimension-key frequencies (ANALYZE).

The cost model's default selectivity estimate assumes uniformly distributed
dimension keys — the classic optimizer assumption, and the right default for
the paper's workload.  Real data skews; this module collects per-column
member frequencies so that, when a :class:`Database` has been analyzed,
the cost model prices predicates by *measured* selectivity instead.

Statistics are collected offline (not charged to the query cost clock) and
are invalidated by :func:`repro.engine.maintenance.append_rows` callers
re-running :func:`analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..schema.dimension import Dimension
from ..schema.query import DimPredicate
from ..schema.star import StarSchema
from ..storage.catalog import TableEntry


@dataclass
class ColumnStats:
    """Frequencies of one table column's keys (at the table's stored level
    of that dimension)."""

    dim_index: int
    stored_level: int
    counts: np.ndarray  # per member id at stored_level
    n_rows: int

    def selectivity(self, dim: Dimension, predicate: DimPredicate) -> float:
        """Measured fraction of rows whose key rolls up into the
        predicate's member set."""
        if self.n_rows == 0:
            return 0.0
        if predicate.level == self.stored_level:
            selected = sum(
                int(self.counts[m])
                for m in predicate.member_ids
                if m < self.counts.size
            )
        else:
            rolled = dim.rollup_map(self.stored_level, predicate.level)
            mask = np.isin(
                rolled, np.fromiter(predicate.member_ids, dtype=np.int64)
            )
            selected = int(self.counts[mask].sum())
        return selected / self.n_rows

    @property
    def n_distinct(self) -> int:
        """Number of distinct members observed."""
        return int(np.count_nonzero(self.counts))


@dataclass
class TableStats:
    """ANALYZE output for one table."""

    table_name: str
    n_rows: int
    columns: Dict[int, ColumnStats]

    def predicate_selectivity(
        self, schema: StarSchema, predicate: DimPredicate
    ) -> Optional[float]:
        """Selectivity of one predicate (measured when statistics exist, else uniform)."""
        column = self.columns.get(predicate.dim_index)
        if column is None:
            return None
        dim = schema.dimensions[predicate.dim_index]
        if predicate.level < column.stored_level:
            return None  # predicate finer than the stored key: not derivable
        return column.selectivity(dim, predicate)


def analyze_table(schema: StarSchema, entry: TableEntry) -> TableStats:
    """Scan one table (offline) and collect per-dimension key frequencies."""
    n_dims = schema.n_dims
    columns: Dict[int, ColumnStats] = {}
    rows = list(entry.table.all_rows())
    for d, dim in enumerate(schema.dimensions):
        stored = entry.levels[d]
        if stored == dim.all_level:
            continue
        keys = np.fromiter(
            (int(row[d]) for row in rows), dtype=np.int64, count=len(rows)
        )
        counts = np.bincount(keys, minlength=dim.n_members(stored))
        columns[d] = ColumnStats(
            dim_index=d,
            stored_level=stored,
            counts=counts,
            n_rows=len(rows),
        )
    return TableStats(
        table_name=entry.name, n_rows=len(rows), columns=columns
    )


def analyze(db, table_names: Optional[Sequence[str]] = None) -> Dict[str, TableStats]:
    """ANALYZE some or all tables of a database; stores the result on
    ``db.table_statistics`` (used by the cost model) and returns it."""
    if table_names is None:
        table_names = db.catalog.names()
    stats: Dict[str, TableStats] = dict(getattr(db, "table_statistics", {}))
    for name in table_names:
        entry = db.catalog.get(name)
        stats[name] = analyze_table(db.schema, entry)
    db.table_statistics = stats
    return stats
