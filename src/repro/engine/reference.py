"""Brute-force reference evaluation, for correctness testing only.

Deliberately shares no code with the operator pipelines: plain Python loops,
per-row hierarchy navigation through :meth:`Dimension.rollup`, and a plain
dict accumulator.  Every operator and every optimizer's executed plan is
checked against this in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.operators.results import QueryResult
from ..schema.query import Aggregate, GroupByQuery
from ..schema.star import StarSchema
from ..storage.page import Row


def evaluate_reference(
    schema: StarSchema,
    rows: Iterable[Row],
    query: GroupByQuery,
    source_levels: Tuple[int, ...] | None = None,
    source_aggregate: str | None = None,
) -> QueryResult:
    """Evaluate ``query`` over ``rows`` stored at ``source_levels``
    (default: the base/leaf levels).

    ``source_aggregate`` names the aggregate a view's measure column holds
    (None for raw data); the fold is adjusted exactly as the engine's
    pipelines adjust it.
    """
    from ..schema.lattice import aggregate_compatible, effective_aggregate

    if source_levels is None:
        source_levels = schema.base_levels()
    if not query.answerable_from(source_levels):
        raise ValueError("query is not answerable from the given source levels")
    if not aggregate_compatible(query.aggregate, source_aggregate):
        raise ValueError(
            "query aggregate is incompatible with the source's measure"
        )
    fold = effective_aggregate(query.aggregate, source_aggregate)
    n_dims = schema.n_dims
    groups: Dict[Tuple[int, ...], float] = {}
    counts: Dict[Tuple[int, ...], int] = {}
    for row in rows:
        passed = True
        for pred in query.predicates:
            d = pred.dim_index
            dim = schema.dimensions[d]
            value = dim.rollup(source_levels[d], pred.level, int(row[d]))
            if value not in pred.member_ids:
                passed = False
                break
        if not passed:
            continue
        key = []
        for d in range(n_dims):
            dim = schema.dimensions[d]
            level = query.groupby.levels[d]
            if level == dim.all_level:
                key.append(0)
            else:
                key.append(dim.rollup(source_levels[d], level, int(row[d])))
        key = tuple(key)
        measure = float(row[n_dims])
        if fold is Aggregate.SUM:
            groups[key] = groups.get(key, 0.0) + measure
        elif fold is Aggregate.COUNT:
            groups[key] = groups.get(key, 0.0) + 1.0
        elif fold is Aggregate.MIN:
            groups[key] = min(groups.get(key, measure), measure)
        elif fold is Aggregate.MAX:
            groups[key] = max(groups.get(key, measure), measure)
        elif fold is Aggregate.AVG:
            groups[key] = groups.get(key, 0.0) + measure
            counts[key] = counts.get(key, 0) + 1
        else:  # pragma: no cover - Aggregate is a closed enum
            raise NotImplementedError(fold)
    if fold is Aggregate.AVG:
        groups = {key: total / counts[key] for key, total in groups.items()}
    return QueryResult(query=query, groups=groups)
