"""Database facade and warehouse lifecycle: loading, materialization
(including cube builds and greedy view selection), indexing, statistics,
incremental maintenance, sessions, and optimize + execute."""

from .advisor import (
    QueryLog,
    Recommendation,
    apply_recommendation,
    attach_log,
    recommend_views,
)
from .csvload import CsvLoadError, load_csv, rows_from_csv
from .cube import BuildStep, CubeBuildReport, build_cube, plan_cube_build
from .database import Database
from .result_cache import ResultCache, attach_cache
from .maintenance import MaintenanceError, append_rows
from .navigate import NavigationError, drill_down, roll_up, slice_member
from .persist import load_database, save_database
from .materialize import (
    build_groupby_table,
    compute_groupby_rows,
    pick_materialization_source,
)
from .reference import evaluate_reference
from .session import QuerySession, SessionReport, query_key
from .sqlgen import level_column, to_sql
from .statistics import ColumnStats, TableStats, analyze, analyze_table
from .view_selection import (
    SelectionStep,
    ViewSelection,
    greedy_select_views,
    materialize_selection,
    workload_cost,
)

__all__ = [
    "BuildStep",
    "ColumnStats",
    "CsvLoadError",
    "CubeBuildReport",
    "Database",
    "MaintenanceError",
    "NavigationError",
    "QueryLog",
    "QuerySession",
    "Recommendation",
    "ResultCache",
    "SelectionStep",
    "SessionReport",
    "TableStats",
    "ViewSelection",
    "analyze",
    "analyze_table",
    "append_rows",
    "apply_recommendation",
    "attach_cache",
    "attach_log",
    "build_cube",
    "build_groupby_table",
    "compute_groupby_rows",
    "drill_down",
    "evaluate_reference",
    "greedy_select_views",
    "level_column",
    "load_csv",
    "load_database",
    "materialize_selection",
    "pick_materialization_source",
    "plan_cube_build",
    "query_key",
    "recommend_views",
    "roll_up",
    "rows_from_csv",
    "save_database",
    "slice_member",
    "to_sql",
    "workload_cost",
]
