"""The user-facing database facade.

A :class:`Database` owns the catalog, the buffer pool, and the simulated cost
clock, and exposes the full workflow of the paper:

1. load a base fact table (:meth:`load_base`),
2. precompute materialized group-bys (:meth:`materialize`),
3. build star-join bitmap indexes (:meth:`create_bitmap_index`),
4. optimize a set of dimensional queries with TPLO / ETPLG / GG / optimal
   (:meth:`optimize`),
5. execute the resulting global plan with the shared operators
   (:meth:`execute` / :meth:`run_queries` / :meth:`run_mdx`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.operators.pipeline import ExecContext
from ..obs.metrics import default_registry
from ..obs.trace import NULL_TRACER, Span, Tracer
from ..schema.query import GroupByQuery
from ..schema.star import StarSchema
from ..storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from ..storage.catalog import Catalog, TableEntry
from ..storage.iostats import DEFAULT_RATES, CostRates, IOStats
from ..storage.page import DEFAULT_PAGE_SIZE, Row
from ..storage.table import HeapTable
from .materialize import build_groupby_table, pick_materialization_source

if TYPE_CHECKING:  # pragma: no cover
    from ..core.executor import ExecutionReport
    from ..core.optimizer.plans import GlobalPlan
    from ..serve.service import QueryService

LevelsLike = Union[str, Sequence[int]]


class Database:
    """An in-process ROLAP engine over one star schema."""

    def __init__(
        self,
        schema: StarSchema,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_POOL_PAGES,
        rates: Optional[CostRates] = None,
        paranoia: bool = False,
        kernels: bool = True,
    ):
        self.schema = schema
        self.page_size = page_size
        self.stats = IOStats(rates=rates or DEFAULT_RATES)
        self.pool = BufferPool(self.stats, capacity_pages=buffer_pages)
        self.catalog = Catalog()
        #: Execution path of the shared operators: ``True`` (default) runs
        #: the vectorized columnar batch kernels, ``False`` the legacy
        #: per-tuple path.  Results, simulated costs, and recorded actuals
        #: are byte-identical either way; only wall time differs.  The CLI
        #: exposes this as ``--tuple-path``.
        self.kernels = kernels
        #: Differential-checking mode (see :mod:`repro.check`): validate
        #: every plan before execution and cross-check every result against
        #: the brute-force reference.  Slow; for tests and debugging.
        self.paranoia = paranoia
        #: Monotone mutation epoch: bumped by every path that changes query
        #: answers (base loads, appends, incremental maintenance).  The
        #: semantic result cache compares epochs to drop stale entries even
        #: when a mutation bypassed its wrappers.
        self.data_version = 0
        #: ANALYZE output per table (see :meth:`analyze`); empty means the
        #: cost model falls back to uniform selectivity estimates.
        self.table_statistics: dict = {}
        #: Stored dimension tables (see :meth:`store_dimension_tables`);
        #: empty means dimension hash builds charge CPU only.
        self.dimension_tables: dict = {}
        #: The live tracer; the no-op NULL_TRACER unless inside
        #: :meth:`trace`, so untraced operation costs nothing.
        self.tracer = NULL_TRACER
        #: Root span of the most recent finished :meth:`trace` block.
        self.last_trace: Optional[Span] = None
        #: Armed :class:`repro.faults.FaultPlan` (see :meth:`arm_faults`),
        #: or None when fault injection is off.
        self.faults = None
        #: The loaded :class:`repro.calibrate.profile.CalibrationProfile`,
        #: or None when running on hand-set rates.  Set by
        #: :meth:`apply_profile`; benchmark fingerprints embed its identity
        #: so fitted-rates and default-rates records can never silently
        #: gate each other.
        self.calibration_profile = None

    # -- cost-rate calibration ------------------------------------------------

    def set_rates(self, rates: CostRates) -> None:
        """Swap the simulated cost clock's rates in place.

        The clock object itself is untouched (the buffer pool and every
        operator charge through the same :class:`IOStats` instance), so the
        swap takes effect for all subsequent optimization *and* execution —
        both optimizer families build their :class:`CostModel` from
        ``db.stats.rates`` per :meth:`optimize` call.  Counters are kept;
        call between executions, not during one (an in-flight snapshot
        diff across a rate change raises by design).
        """
        self.stats.rates = rates

    def apply_profile(self, profile) -> None:
        """Run under a fitted calibration profile (see
        :mod:`repro.calibrate`): swap in its rates and record provenance."""
        self.set_rates(profile.rates)
        self.calibration_profile = profile

    # -- loading and precomputation -------------------------------------------

    def _resolve_levels(self, levels: LevelsLike) -> Tuple[int, ...]:
        if isinstance(levels, str):
            return self.schema.parse_groupby_name(levels)
        return self.schema.check_levels(levels)

    def load_base(
        self, rows: Iterable[Row], name: Optional[str] = None
    ) -> TableEntry:
        """Create and load the lowest-level (LL) base table."""
        base_levels = self.schema.base_levels()
        if name is None:
            name = self.schema.groupby_name(base_levels)
        columns = [dim.name for dim in self.schema.dimensions]
        columns.append(self.schema.measure)
        table = HeapTable(name, columns, page_size=self.page_size)
        table.extend(rows)
        entry = self.catalog.register(table, base_levels)
        self.notify_mutation()
        return entry

    def notify_mutation(self) -> None:
        """Record that query answers may have changed (new or appended fact
        data).  Every mutation entry point — :meth:`load_base`,
        :meth:`append_rows`, and direct calls into
        :func:`repro.engine.maintenance.append_rows` — funnels through
        here, so caches keyed on :attr:`data_version` can never serve
        results computed before a mutation."""
        self.data_version += 1

    def materialize(
        self,
        levels: LevelsLike,
        name: Optional[str] = None,
        aggregate: "Aggregate | None" = None,
    ) -> TableEntry:
        """Precompute one group-by from the cheapest compatible table.

        ``aggregate`` defaults to SUM.  The resulting view can only answer
        queries with the same aggregate (raw base data answers anything);
        the catalog records this and the optimizers respect it.

        Offline precomputation: not charged to the query cost clock.
        """
        from ..schema.query import Aggregate

        if aggregate is None:
            aggregate = Aggregate.SUM
        target = self._resolve_levels(levels)
        if name is None:
            name = self.schema.groupby_name(target)
            if aggregate is not Aggregate.SUM:
                name = f"{name}[{aggregate.value}]"
        source = pick_materialization_source(
            self.schema, self.catalog.entries(), target, aggregate
        )
        table = build_groupby_table(
            self.schema, source, target, name, self.page_size,
            aggregate=aggregate,
        )
        return self.catalog.register(
            table, target, clustered=True, source_aggregate=aggregate.value
        )

    def store_dimension_tables(self) -> dict:
        """Materialize every dimension as a stored table (one row per leaf
        member carrying its ancestors at each level).

        Afterwards, building a dimension hash structure during query
        evaluation charges a sequential scan of the dimension table — the
        full cost of the paper's "building a hash table on each dimension
        table" — which the shared operators then amortize across a class.
        """
        for dim in self.schema.dimensions:
            if dim.name in self.dimension_tables:
                continue
            columns = [dim.level_name(depth) for depth in range(dim.n_levels)]
            table = HeapTable(
                f"{dim.name}dim", columns, page_size=self.page_size
            )
            n_leaves = dim.n_members(0)
            for leaf in range(n_leaves):
                row = [leaf]
                for depth in range(1, dim.n_levels):
                    row.append(dim.rollup(0, depth, leaf))
                table.append(tuple(row))
            self.dimension_tables[dim.name] = table
        return self.dimension_tables

    def analyze(self, table_names: Optional[Sequence[str]] = None) -> dict:
        """Collect measured dimension-key frequencies (ANALYZE); the cost
        model then prices predicates by measured selectivity for analyzed
        tables (see :mod:`repro.engine.statistics`)."""
        from .statistics import analyze

        return analyze(self, table_names)

    def append_rows(self, rows: Iterable[Row]) -> dict:
        """Append fact rows to the base table and incrementally maintain
        every materialized group-by and join index (see
        :mod:`repro.engine.maintenance`)."""
        from .maintenance import append_rows

        return append_rows(self, rows)

    def create_bitmap_index(
        self,
        table_name: str,
        dim_name: str,
        level: Optional[Union[int, str]] = None,
        kind: str = "bitmap",
    ):
        """Build a star-join index on one dimension attribute of a table.

        ``level`` defaults to the level the table stores for that dimension
        (the finest indexable level).  ``kind`` is ``"bitmap"`` or
        ``"btree"`` (position-list payload).
        """
        from ..index.bitmap_index import BitmapJoinIndex
        from ..index.btree import PositionListJoinIndex

        entry = self.catalog.get(table_name)
        dim_index = self.schema.dim_index(dim_name)
        dim = self.schema.dimensions[dim_index]
        stored = entry.levels[dim_index]
        if stored == dim.all_level:
            raise ValueError(
                f"table {table_name!r} aggregates {dim_name!r} to ALL; "
                f"nothing to index"
            )
        if level is None:
            depth = stored
        elif isinstance(level, str):
            depth = dim.level_depth(level)
        else:
            depth = int(level)
        if not stored <= depth < dim.all_level:
            raise ValueError(
                f"index level {depth} must be in [{stored}, {dim.all_level - 1}] "
                f"for {table_name!r}.{dim_name!r}"
            )
        builder = {
            "bitmap": BitmapJoinIndex,
            "btree": PositionListJoinIndex,
        }.get(kind)
        if builder is None:
            raise ValueError(f"unknown index kind {kind!r}")
        index = builder.build(
            entry.table,
            table_name,
            dim_index,
            depth,
            column_index=dim_index,
            key_to_member=dim.rollup_map(stored, depth),
            n_members=dim.n_members(depth),
        )
        entry.add_index(dim_index, depth, index)
        return index

    def index_all_dimensions(
        self,
        table_name: str,
        dim_names: Optional[Sequence[str]] = None,
        kind: str = "bitmap",
    ) -> None:
        """Build one index per (given) dimension at its stored level."""
        entry = self.catalog.get(table_name)
        if dim_names is None:
            dim_names = [
                dim.name
                for dim, lv in zip(self.schema.dimensions, entry.levels)
                if lv < dim.all_level
            ]
        for dim_name in dim_names:
            self.create_bitmap_index(table_name, dim_name, kind=kind)

    # -- execution --------------------------------------------------------------

    def ctx(self) -> ExecContext:
        """An ExecContext over this database's catalog, pool, and clock."""
        return ExecContext(
            schema=self.schema,
            catalog=self.catalog,
            pool=self.pool,
            stats=self.stats,
            dim_tables=self.dimension_tables or None,
            tracer=self.tracer,
            faults=self.faults,
            kernels=self.kernels,
        )

    def arm_faults(self, plan) -> None:
        """Arm a :class:`repro.faults.FaultPlan` for subsequent execution.

        The plan is threaded into every execution context this database
        builds (including the parallel executor's isolated per-class
        contexts, and the sharded scatter-gather path's per-shard tasks)
        and into the shared buffer pool, so every injection site sees it.  Pass None — or call :meth:`disarm_faults` — to turn
        injection back off."""
        self.faults = plan
        self.pool.faults = plan

    def disarm_faults(self) -> None:
        """Turn fault injection off (idempotent)."""
        self.arm_faults(None)

    def flight_recorder(self):
        """The serving-plane flight recorder, when a
        :class:`~repro.serve.service.QueryService` with recording enabled
        has attached to this database (None otherwise).  See
        :mod:`repro.obs.recorder` and ``docs/observability.md``."""
        return getattr(self, "_flight_recorder", None)

    @contextmanager
    def trace(
        self,
        label: str = "batch",
        clock: Optional[Callable[[], float]] = None,
    ) -> Iterator[Tracer]:
        """Trace everything inside the ``with`` block into one span tree.

        A real :class:`~repro.obs.trace.Tracer` (bound to this database's
        cost clock; ``clock`` injectable for deterministic tests) replaces
        the no-op tracer for the duration; a root span named ``label``
        wraps the block.  Afterwards the finished tree is available as
        :attr:`last_trace`::

            with db.trace() as tracer:
                db.run_queries(queries, "gg")
            print(db.last_trace.find("execute.plan").sim_ms)

        Export with :func:`repro.obs.write_trace` /
        :func:`repro.obs.to_chrome_trace`.
        """
        tracer = Tracer(stats=self.stats, clock=clock)
        root = tracer.span(label)
        self.tracer = tracer
        try:
            with root:
                yield tracer
        finally:
            self.tracer = NULL_TRACER
            self.last_trace = root

    def flush(self) -> None:
        """Drop all cached pages — the paper's cold-start discipline."""
        self.pool.flush()

    def reset_stats(self) -> None:
        """Zero the simulated cost counters."""
        self.stats.reset()

    def optimize(
        self, queries: Sequence[GroupByQuery], algorithm: str = "gg"
    ) -> "GlobalPlan":
        """Build a global plan with one of the paper's algorithms
        (``naive``, ``tplo``, ``etplg``, ``gg``, ``optimal``).

        The returned plan carries ``search_stats`` (class costings
        performed, planning wall time) for studying the planning-effort
        trade-off the paper's Section 8 raises.
        """
        import time as _time

        from ..core.optimizer import make_optimizer

        optimizer = make_optimizer(algorithm, self)
        with self.tracer.span(
            f"optimize.{algorithm}", n_queries=len(queries)
        ) as span:
            started = _time.perf_counter()
            plan = optimizer.optimize(list(queries))
            # Merge, don't overwrite: optimizers (e.g. dag) leave their own
            # planning metadata in search_stats.
            plan.search_stats = {
                **plan.search_stats,
                "plan_costings": optimizer.model.n_plan_costings,
                "planning_s": _time.perf_counter() - started,
            }
            span.set("plan_costings", optimizer.model.n_plan_costings)
            span.set("n_classes", len(plan.classes))
        default_registry().counter(
            "optimizer.plan_costings", "class costings computed while planning"
        ).inc(optimizer.model.n_plan_costings)
        return plan

    def execute(
        self,
        plan: "GlobalPlan",
        cold: bool = True,
        paranoia: Optional[bool] = None,
    ) -> "ExecutionReport":
        """Execute a global plan; ``cold`` flushes the pool per class, as the
        paper flushed buffers before each measured run.  ``paranoia``
        overrides the database's :attr:`paranoia` flag for this run."""
        from ..core.executor import execute_plan

        return execute_plan(self, plan, cold=cold, paranoia=paranoia)

    def run_queries(
        self,
        queries: Sequence[GroupByQuery],
        algorithm: str = "gg",
        cold: bool = True,
    ) -> "ExecutionReport":
        """Optimize + execute in one call.

        Under :attr:`paranoia` the plan is additionally validated against
        the *submitted* batch (the executor alone only sees the plan, so
        an optimizer silently dropping a query is caught here).
        """
        plan = self.optimize(queries, algorithm)
        if self.paranoia:
            from ..check.errors import CorrectnessError, PlanValidationError
            from ..check.validate import validate_global_plan

            try:
                validate_global_plan(self.schema, self.catalog, plan, queries)
            except PlanValidationError as exc:
                raise CorrectnessError(
                    f"{algorithm!r} produced a structurally invalid plan "
                    f"for the submitted batch: {exc}",
                    plan=plan,
                ) from exc
        return self.execute(plan, cold=cold)

    def run_mdx(
        self, text: str, algorithm: str = "gg", cold: bool = True
    ) -> "ExecutionReport":
        """Parse an MDX expression, split it into its component group-by
        queries, optimize them as a unit, and execute."""
        from ..mdx import translate_mdx

        queries = translate_mdx(self.schema, text, tracer=self.tracer)
        return self.run_queries(queries, algorithm=algorithm, cold=cold)

    def serve(self, **config) -> "QueryService":
        """A concurrent query service over this database (not yet started).

        Keyword arguments become the service's
        :class:`~repro.serve.batching.ServeConfig`::

            with db.serve(window_ms=5.0) as service:
                future = service.submit(queries)
                response = future.result(timeout=10.0)

        ``serve(shards=N)`` switches the scheduler to scatter-gather
        execution over N hash partitions of the data (see
        :mod:`repro.serve.shard`).

        See :mod:`repro.serve` and ``docs/serving.md``.
        """
        from ..serve import QueryService, ServeConfig

        return QueryService(self, ServeConfig(**config))

    def build_shards(self, n_shards: int, dim_name: Optional[str] = None):
        """Hash-partition every catalog table into N data shards (see
        :func:`repro.serve.shard.build_shards`); the returned
        :class:`~repro.serve.shard.ShardSet` feeds
        :func:`~repro.serve.shard.execute_plan_sharded` directly."""
        from ..serve.shard import build_shards

        return build_shards(self, n_shards, dim_name)

    # -- inspection ----------------------------------------------------------------

    def table_report(self) -> List[Tuple[str, int, int]]:
        """(name, rows, pages) for every registered table, largest first."""
        rows = [
            (entry.name, entry.n_rows, entry.n_pages)
            for entry in self.catalog.entries()
        ]
        rows.sort(key=lambda item: (-item[1], item[0]))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Database(schema={self.schema.name!r}, "
            f"tables={self.catalog.names()})"
        )
