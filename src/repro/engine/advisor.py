"""Workload logging and self-tuning view recommendation.

Closes the loop between execution and precomputation: a :class:`QueryLog`
records every query a database executes; :func:`recommend_views` feeds the
observed workload into the greedy view-selection algorithm and reports
which group-bys would have helped most; ``apply`` materializes them.

This is the operational form of the paper's premise that precomputed
group-bys drive OLAP performance — instead of guessing the materialization
set up front, derive it from what clients actually ask.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..schema.query import GroupBy, GroupByQuery
from .view_selection import (
    ViewSelection,
    greedy_select_views,
    materialize_selection,
)


@dataclass
class LoggedQuery:
    """One executed query, reduced to what the advisor needs."""

    required_levels: Tuple[int, ...]
    groupby_levels: Tuple[int, ...]
    aggregate: str
    sim_ms: float


@dataclass
class QueryLog:
    """An append-only record of executed queries."""

    entries: List[LoggedQuery] = field(default_factory=list)

    def record(self, query: GroupByQuery, sim_ms: float = 0.0) -> None:
        """Append one entry."""
        self.entries.append(
            LoggedQuery(
                required_levels=query.required_levels(),
                groupby_levels=query.groupby.levels,
                aggregate=query.aggregate.value,
                sim_ms=sim_ms,
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def hot_requirements(self, top: int = 10) -> List[Tuple[Tuple[int, ...], int]]:
        """The most frequent required-level points, hottest first."""
        counts = Counter(entry.required_levels for entry in self.entries)
        return counts.most_common(top)

    def as_workload(self) -> List[GroupByQuery]:
        """Reconstruct a representative workload (SUM-only skeletons carrying
        the logged data requirements) for the view-selection objective."""
        workload: List[GroupByQuery] = []
        for entry in self.entries:
            workload.append(
                GroupByQuery(
                    groupby=GroupBy(entry.required_levels),
                    label="logged",
                )
            )
        return workload


def attach_log(db) -> QueryLog:
    """Attach a :class:`QueryLog` to ``db``: every subsequent
    ``db.execute`` records its queries (with per-class simulated cost
    attributed evenly across the class's queries)."""
    log = QueryLog()
    original_execute = db.execute

    def logging_execute(plan, cold: bool = True):
        """Wrapped Database.execute that records each executed query."""
        report = original_execute(plan, cold=cold)
        for execution in report.class_executions:
            queries = execution.plan_class.queries
            share = execution.sim_ms / max(1, len(queries))
            for query in queries:
                log.record(query, sim_ms=share)
        return report

    db.execute = logging_execute
    db.query_log = log
    return log


@dataclass
class Recommendation:
    """The advisor's output."""

    selection: ViewSelection
    already_materialized: List[str]
    estimated_saving_rows: float

    def describe(self, schema) -> str:
        """Human-readable one-line/short rendering for display."""
        lines = [
            f"advisor: {len(self.selection.views)} view(s) recommended, "
            f"~{self.estimated_saving_rows:.0f} rows of reading saved"
        ]
        for step in self.selection.steps:
            lines.append(
                f"  + {step.view.name(schema):12s} "
                f"(~{step.estimated_rows} rows, benefit {step.benefit:.0f})"
            )
        if self.already_materialized:
            lines.append(
                f"  already materialized: "
                f"{', '.join(self.already_materialized)}"
            )
        return "\n".join(lines)


def recommend_views(
    db, log: Optional[QueryLog] = None, budget: int = 3
) -> Recommendation:
    """Recommend up to ``budget`` additional group-bys to materialize,
    driven by the logged workload (``db.query_log`` by default)."""
    if log is None:
        log = getattr(db, "query_log", None)
    if log is None or len(log) == 0:
        raise ValueError(
            "no logged workload; call attach_log(db) and run queries first"
        )
    n_base = max(entry.n_rows for entry in db.catalog.entries())
    workload = log.as_workload()
    existing = {
        GroupBy(entry.levels): entry.name for entry in db.catalog.entries()
    }
    selection = greedy_select_views(
        db.schema, n_base, n_views=budget + len(existing), workload=workload
    )
    already: List[str] = []
    kept = ViewSelection()
    for view, step in zip(selection.views, selection.steps):
        if view in existing:
            already.append(existing[view])
            continue
        if len(kept.views) >= budget:
            break
        kept.views.append(view)
        kept.steps.append(step)
        kept.total_benefit += step.benefit
    return Recommendation(
        selection=kept,
        already_materialized=already,
        estimated_saving_rows=kept.total_benefit,
    )


def apply_recommendation(db, recommendation: Recommendation) -> List[str]:
    """Materialize the recommended views; returns the new table names."""
    return materialize_selection(db, recommendation.selection)
