"""Greedy materialized-view selection (Harinarayan/Rajaraman/Ullman style).

The paper assumes a set of precomputed group-bys exists ("Virtually all
database systems support OLAP queries by precomputing group bys", Section 4,
citing [GH95, HRU96, CR96]) but does not say how to choose them.  This
module supplies that substrate: the classic greedy algorithm that repeatedly
materializes the group-by with the highest *benefit per selection step*,
where the benefit of a view is the total row-count saving it yields over the
lattice points it can serve.

The linear cost model is HRU's: answering a group-by ``w`` costs the row
count of the smallest materialized ancestor-or-self of ``w``.  Sizes come
from :func:`repro.schema.lattice.estimate_groupby_rows` (Cardenas over the
level-domain), so selection needs no data scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..schema.lattice import enumerate_lattice, estimate_groupby_rows
from ..schema.query import GroupBy, GroupByQuery
from ..schema.star import StarSchema


@dataclass
class SelectionStep:
    """One greedy iteration: the chosen view and its marginal benefit."""

    view: GroupBy
    benefit: float
    estimated_rows: int


@dataclass
class ViewSelection:
    """The outcome of a greedy run."""

    views: List[GroupBy] = field(default_factory=list)
    steps: List[SelectionStep] = field(default_factory=list)
    total_benefit: float = 0.0

    def names(self, schema: StarSchema) -> List[str]:
        """The display names, in order."""
        return [view.name(schema) for view in self.views]


def _workload_points(
    schema: StarSchema,
    workload: Optional[Sequence[GroupByQuery]],
) -> Dict[GroupBy, float]:
    """The lattice points whose cost the selection should minimize, with
    weights.  Without a workload: every lattice point, weight 1 (HRU's
    uniform assumption).  With one: each query contributes its
    required-levels point (the finest data it must read), weighted by
    multiplicity."""
    if workload is None:
        return {point: 1.0 for point in enumerate_lattice(schema)}
    points: Dict[GroupBy, float] = {}
    for query in workload:
        point = GroupBy(query.required_levels())
        points[point] = points.get(point, 0.0) + 1.0
    return points


def greedy_select_views(
    schema: StarSchema,
    n_base_rows: int,
    n_views: int,
    workload: Optional[Sequence[GroupByQuery]] = None,
) -> ViewSelection:
    """Select up to ``n_views`` group-bys to materialize (beyond the base
    table, which is always available).

    Greedy invariant: each step picks the unselected view maximizing the
    total decrease in estimated answering cost over the target points;
    stops early when no view helps.
    """
    if n_views < 0:
        raise ValueError("n_views cannot be negative")
    base = GroupBy(schema.base_levels())
    sizes: Dict[GroupBy, int] = {
        point: estimate_groupby_rows(schema, point.levels, n_base_rows)
        for point in enumerate_lattice(schema)
    }
    sizes[base] = n_base_rows
    points = _workload_points(schema, workload)
    # cost_of[point]: rows of the cheapest selected view serving it.
    cost_of: Dict[GroupBy, float] = {
        point: float(n_base_rows) for point in points
    }
    candidates = [p for p in enumerate_lattice(schema) if p != base]
    selection = ViewSelection()
    for _step in range(n_views):
        best_view: Optional[GroupBy] = None
        best_benefit = 0.0
        for view in candidates:
            view_rows = sizes[view]
            benefit = 0.0
            for point, weight in points.items():
                if point.derivable_from(view) and cost_of[point] > view_rows:
                    benefit += weight * (cost_of[point] - view_rows)
            if benefit > best_benefit or (
                best_view is not None
                and benefit == best_benefit
                and benefit > 0
                and view < best_view
            ):
                best_benefit = benefit
                best_view = view
        if best_view is None or best_benefit <= 0:
            break
        candidates.remove(best_view)
        selection.views.append(best_view)
        selection.steps.append(
            SelectionStep(
                view=best_view,
                benefit=best_benefit,
                estimated_rows=sizes[best_view],
            )
        )
        selection.total_benefit += best_benefit
        view_rows = sizes[best_view]
        for point in points:
            if point.derivable_from(best_view) and cost_of[point] > view_rows:
                cost_of[point] = float(view_rows)
    return selection


def workload_cost(
    schema: StarSchema,
    n_base_rows: int,
    selected: Iterable[GroupBy],
    workload: Optional[Sequence[GroupByQuery]] = None,
) -> float:
    """Estimated total answering cost (rows read) of the target points given
    a set of materialized views — HRU's objective function, usable to
    compare selections."""
    sizes = {
        view: estimate_groupby_rows(schema, view.levels, n_base_rows)
        for view in selected
    }
    points = _workload_points(schema, workload)
    total = 0.0
    for point, weight in points.items():
        best = float(n_base_rows)
        for view, rows in sizes.items():
            if point.derivable_from(view) and rows < best:
                best = float(rows)
        total += weight * best
    return total


def materialize_selection(db, selection: ViewSelection) -> List[str]:
    """Materialize every selected view in ``db``; returns the table names.

    Views are created finest-first so later (coarser) ones can derive from
    earlier ones instead of re-scanning the base table.
    """
    names: List[str] = []
    ordered = sorted(selection.views, key=lambda v: (v.level_sum(), v.levels))
    for view in ordered:
        name = view.name(db.schema)
        if name in db.catalog:
            continue
        db.materialize(view.levels, name=name)
        names.append(name)
    return names
