"""Cube construction: materializing many group-bys with derivation chaining.

The paper's Section 1 opens with "the development of fast cubing
algorithms"; its evaluation presumes a set of materialized group-bys exists.
This module builds them the way those algorithms do: targets are processed
finest-first, and each one is derived from the *smallest already-available*
table (base or previously built view) rather than re-scanning the base —
the core idea of PipeSort/PipeHash-style cube builders, specialized to our
sorted-heap views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..schema.lattice import enumerate_lattice, estimate_groupby_rows
from ..schema.query import Aggregate, GroupBy


@dataclass
class BuildStep:
    """One planned (and optionally executed) materialization."""

    target: GroupBy
    source_name: str
    est_source_rows: int
    est_target_rows: int
    actual_rows: Optional[int] = None

    def describe(self, schema) -> str:
        """Human-readable one-line/short rendering for display."""
        built = (
            f" -> {self.actual_rows} rows"
            if self.actual_rows is not None
            else ""
        )
        return (
            f"{self.target.name(schema):12s} from {self.source_name:12s} "
            f"(~{self.est_source_rows} rows read, "
            f"~{self.est_target_rows} out){built}"
        )


@dataclass
class CubeBuildReport:
    """The full build plan / outcome."""

    steps: List[BuildStep] = field(default_factory=list)
    created: List[str] = field(default_factory=list)

    @property
    def total_est_rows_read(self) -> int:
        """Sum of estimated source rows over all steps."""
        return sum(step.est_source_rows for step in self.steps)

    def describe(self, schema) -> str:
        """Human-readable one-line/short rendering for display."""
        lines = [f"cube build: {len(self.steps)} view(s), "
                 f"~{self.total_est_rows_read} rows read"]
        lines.extend("  " + step.describe(schema) for step in self.steps)
        return "\n".join(lines)


def plan_cube_build(
    db,
    targets: Optional[Sequence[GroupBy]] = None,
) -> CubeBuildReport:
    """Plan the materialization order and per-view derivation source.

    ``targets`` defaults to the full lattice above the base table
    (everything except the base itself).  Already-materialized group-bys
    are skipped.  The plan orders targets finest-first and derives each
    from the smallest available table — base, an existing view, or an
    earlier target.
    """
    schema = db.schema
    base = GroupBy(schema.base_levels())
    n_base = None
    # Available sources: name -> (levels, estimated rows).
    available: Dict[str, tuple] = {}
    existing_points = set()
    for entry in db.catalog.entries():
        if entry.source_aggregate not in (None, Aggregate.SUM.value):
            continue  # cube views hold SUMs; other views can't feed them
        available[entry.name] = (entry.levels, entry.n_rows)
        existing_points.add(GroupBy(entry.levels))
        if entry.is_raw:
            n_base = entry.n_rows
    if n_base is None:
        raise ValueError("the database has no base table to build from")
    if targets is None:
        targets = [
            point for point in enumerate_lattice(schema) if point != base
        ]
    ordered = sorted(
        {t for t in targets if t not in existing_points},
        key=lambda point: (point.level_sum(), point.levels),
    )
    report = CubeBuildReport()
    for target in ordered:
        best_name = None
        best_rows = None
        for name, (levels, rows) in available.items():
            if all(s <= t for s, t in zip(levels, target.levels)):
                if best_rows is None or rows < best_rows:
                    best_name, best_rows = name, rows
        assert best_name is not None  # the base always qualifies
        est_target = estimate_groupby_rows(schema, target.levels, n_base)
        report.steps.append(
            BuildStep(
                target=target,
                source_name=best_name,
                est_source_rows=int(best_rows),
                est_target_rows=est_target,
            )
        )
        available[target.name(schema)] = (target.levels, est_target)
    return report


def build_cube(
    db,
    targets: Optional[Sequence[GroupBy]] = None,
) -> CubeBuildReport:
    """Plan and execute a cube build.

    Execution goes through :meth:`Database.materialize`, which re-picks the
    cheapest source from *actual* row counts — it can only improve on the
    plan's estimated choice, never regress, because the build order makes
    every planned source available.  The report records actual row counts.
    """
    report = plan_cube_build(db, targets)
    for step in report.steps:
        name = step.target.name(db.schema)
        entry = db.materialize(step.target.levels, name=name)
        step.actual_rows = entry.n_rows
        report.created.append(name)
    return report
