"""Semantic result caching.

Dashboards re-ask the same dimensional queries; a warehouse front end caches
results keyed by the query's *semantics* (target group-by + predicates +
aggregate — the same identity the session deduplicator uses), not its object
identity.  The cache is invalidated wholesale by base-table appends, since
any group's value may have changed.

Usage::

    cache = attach_cache(db)
    db.run_queries([q], "gg")   # miss: executes, caches
    db.run_queries([q], "gg")   # hit: served from cache, no execution
    db.append_rows(rows)        # invalidates
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.operators.results import QueryResult
from ..schema.query import GroupByQuery
from .session import QueryKey, query_key


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for a ResultCache."""
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded semantic cache of query results."""

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("the cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: Dict[QueryKey, Dict] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, query: GroupByQuery) -> Optional[QueryResult]:
        """Look an entry up (None/raise per class contract)."""
        groups = self._entries.get(query_key(query))
        if groups is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return QueryResult(query=query, groups=dict(groups))

    def put(self, result: QueryResult) -> None:
        """Insert or replace the entry."""
        key = query_key(result.query)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            # FIFO eviction: drop the oldest entry.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = dict(result.groups)

    def invalidate(self) -> None:
        """Drop every cached entry."""
        if self._entries:
            self.stats.invalidations += 1
        self._entries.clear()


def attach_cache(db, max_entries: int = 256) -> ResultCache:
    """Wire a :class:`ResultCache` into ``db.run_queries``:

    * cached queries are answered without planning or execution;
    * only the cache misses are optimized (still as one multi-query unit)
      and their results cached;
    * ``db.append_rows`` invalidates the cache.
    """
    cache = ResultCache(max_entries=max_entries)
    original_run = db.run_queries
    original_append = db.append_rows

    def caching_run(
        queries: Sequence[GroupByQuery], algorithm: str = "gg", cold: bool = True
    ):
        """Wrapped Database.run_queries serving hits from the cache."""
        hits: Dict[int, QueryResult] = {}
        misses: List[GroupByQuery] = []
        for query in queries:
            cached = cache.get(query)
            if cached is None:
                misses.append(query)
            else:
                hits[query.qid] = cached
        if misses:
            report = original_run(misses, algorithm=algorithm, cold=cold)
            for result in report.results.values():
                cache.put(result)
        else:
            # Nothing to execute: synthesize an empty report around an
            # empty plan so callers keep a uniform interface.
            from ..core.executor import ExecutionReport
            from ..core.optimizer.plans import GlobalPlan

            report = ExecutionReport(plan=GlobalPlan(algorithm=algorithm))
        return _CachedReport(report, hits)

    def invalidating_append(rows):
        """Wrapped Database.append_rows that drops the cache afterwards."""
        outcome = original_append(rows)
        cache.invalidate()
        return outcome

    db.run_queries = caching_run
    db.append_rows = invalidating_append
    db.result_cache = cache
    return cache


class _CachedReport:
    """An ExecutionReport wrapper that overlays cache hits onto the
    executed results (everything else delegates)."""

    def __init__(self, report, hits: Dict[int, QueryResult]):
        self._report = report
        self._hits = hits

    @property
    def results(self) -> Dict[int, QueryResult]:
        """Executed results overlaid with cache hits, keyed by qid."""
        merged = dict(self._report.results)
        merged.update(self._hits)
        return merged

    def result_for(self, query: GroupByQuery) -> QueryResult:
        """The result of one submitted query, by its qid."""
        if query.qid in self._hits:
            return self._hits[query.qid]
        return self._report.result_for(query)

    @property
    def n_cache_hits(self) -> int:
        """How many of this batch's queries came from the cache."""
        return len(self._hits)

    def __getattr__(self, name):
        return getattr(self._report, name)
