"""Semantic result caching.

Dashboards re-ask the same dimensional queries; a warehouse front end caches
results keyed by the query's *semantics* (target group-by + predicates +
aggregate — the same identity the session deduplicator uses), not its object
identity.

Coherence is epoch-based: every mutation path that can change query answers
bumps :attr:`Database.data_version` (base loads, ``append_rows``, and direct
calls into :mod:`repro.engine.maintenance`), and the cache compares epochs
on every access — so a mutation that bypasses the wrapped ``append_rows``
still invalidates, and a stale answer is never served.  Entries are
deep-copied on both insert and serve: a caller mutating a returned result
cannot corrupt the cache, nor the reverse.

Usage::

    cache = attach_cache(db)
    db.run_queries([q], "gg")   # miss: executes, caches
    db.run_queries([q], "gg")   # hit: served from cache, no execution
    db.append_rows(rows)        # invalidates (epoch bump)

Under :attr:`Database.paranoia`, a sample of every batch's served hits is
recomputed from scratch by the reference evaluator — a stale or corrupted
entry raises :class:`~repro.check.errors.CorrectnessError` instead of
silently answering wrong.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.operators.results import QueryResult
from ..obs.metrics import default_registry
from ..schema.query import GroupByQuery
from .session import QueryKey, query_key


@dataclass
class CacheStats:
    """Hit/miss/eviction/invalidation counters for a ResultCache."""
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded semantic cache of query results.

    Eviction is **access-ordered LRU**: a hit refreshes the entry, so a
    dashboard's hot queries survive while one-off queries age out —
    insertion-order (FIFO) eviction would drop the most popular entry as
    readily as a dead one.  Effectiveness is exported through the metrics
    registry (``result_cache.hits`` / ``.misses`` / ``.evictions`` /
    ``.invalidations`` counters, ``result_cache.occupancy`` and
    ``.hit_rate`` gauges) so the serve layer can report cache health next
    to its coalescing numbers.

    All operations hold an internal lock: the serve scheduler probes the
    cache while client threads may run ``db.run_queries`` of their own.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("the cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[QueryKey, Dict]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()
        #: The mutation epoch the entries were computed at (None until the
        #: first sync).  See :meth:`sync`.
        self._data_version: Optional[int] = None
        metrics = default_registry()
        self._hits_metric = metrics.counter(
            "result_cache.hits", "semantic-cache lookups served"
        )
        self._misses_metric = metrics.counter(
            "result_cache.misses", "semantic-cache lookups that missed"
        )
        self._evictions_metric = metrics.counter(
            "result_cache.evictions", "LRU entries dropped to admit new ones"
        )
        self._invalidations_metric = metrics.counter(
            "result_cache.invalidations",
            "wholesale cache drops after a data mutation",
        )
        self._occupancy_metric = metrics.gauge(
            "result_cache.occupancy", "entries currently cached"
        )
        self._hit_rate_metric = metrics.gauge(
            "result_cache.hit_rate", "hits / (hits + misses) over the lifetime"
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def sync(self, data_version: int) -> None:
        """Reconcile with the database's mutation epoch: entries computed
        at an older epoch are dropped wholesale.  Called on every access
        path, so even mutations that bypassed the cache's wrappers (e.g. a
        direct :func:`repro.engine.maintenance.append_rows` call) cannot
        leave stale answers behind."""
        with self._lock:
            if self._data_version != data_version:
                if self._data_version is not None:
                    self.invalidate()
                self._data_version = data_version

    def get(self, query: GroupByQuery) -> Optional[QueryResult]:
        """Look an entry up (None/raise per class contract).

        A hit moves the entry to most-recently-used, and the returned
        result owns a deep copy of the cached groups; mutating it cannot
        corrupt the cache.
        """
        key = query_key(query)
        with self._lock:
            groups = self._entries.get(key)
            if groups is None:
                self.stats.misses += 1
                self._misses_metric.inc()
                self._hit_rate_metric.set(self.stats.hit_rate)
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._hits_metric.inc()
            self._hit_rate_metric.set(self.stats.hit_rate)
            return QueryResult(query=query, groups=copy.deepcopy(groups))

    def put(self, result: QueryResult) -> None:
        """Insert or replace the entry at most-recently-used (deep-copied:
        later mutation of the caller's result cannot reach the cached
        groups)."""
        key = query_key(result.query)
        with self._lock:
            if key not in self._entries and (
                len(self._entries) >= self.max_entries
            ):
                # LRU eviction: drop the least-recently-used entry.
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._evictions_metric.inc()
            self._entries[key] = copy.deepcopy(dict(result.groups))
            self._entries.move_to_end(key)
            self._occupancy_metric.set(len(self._entries))

    def invalidate(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            if self._entries:
                self.stats.invalidations += 1
                self._invalidations_metric.inc()
            self._entries.clear()
            self._occupancy_metric.set(0)


def attach_cache(db, max_entries: int = 256) -> ResultCache:
    """Wire a :class:`ResultCache` into ``db.run_queries``:

    * cached queries are answered without planning or execution;
    * only the cache misses are optimized (still as one multi-query unit)
      and their results cached;
    * any mutation epoch change (``db.append_rows``, direct maintenance,
      a new base load) invalidates the cache.
    """
    cache = ResultCache(max_entries=max_entries)
    cache.sync(db.data_version)
    original_run = db.run_queries
    original_append = db.append_rows

    def caching_run(
        queries: Sequence[GroupByQuery], algorithm: str = "gg", cold: bool = True
    ):
        """Wrapped Database.run_queries serving hits from the cache."""
        cache.sync(db.data_version)
        hits: Dict[int, QueryResult] = {}
        misses: List[GroupByQuery] = []
        for query in queries:
            cached = cache.get(query)
            if cached is None:
                misses.append(query)
            else:
                hits[query.qid] = cached
        if misses:
            report = original_run(misses, algorithm=algorithm, cold=cold)
            # A partially-failed execution (fault-isolated class failures)
            # must leave no trace in the cache: its surviving results are
            # correct, but retaining them would make a later identical
            # batch silently skip re-executing — and therefore skip
            # re-surfacing the typed error — for the failed queries'
            # batchmates.  Only fully-clean executions are retained.
            if not getattr(report, "failures", None):
                for result in report.results.values():
                    cache.put(result)
        else:
            # Nothing to execute: synthesize an empty report around an
            # empty plan so callers keep a uniform interface.  The wrapper
            # below still reports the *real* batch size and hit count.
            from ..core.executor import ExecutionReport
            from ..core.optimizer.plans import GlobalPlan

            report = ExecutionReport(plan=GlobalPlan(algorithm=algorithm))
        if hits and getattr(db, "paranoia", False):
            from ..check.paranoia import recheck_cache_hits

            with db.tracer.span("check.cache", n_hits=len(hits)) as span:
                span.set("n_rechecked", recheck_cache_hits(db, hits))
        return _CachedReport(report, hits, queries)

    def invalidating_append(rows):
        """Wrapped Database.append_rows that reconciles the cache with the
        bumped mutation epoch (i.e. drops it) afterwards."""
        outcome = original_append(rows)
        cache.sync(db.data_version)
        return outcome

    db.run_queries = caching_run
    db.append_rows = invalidating_append
    db.result_cache = cache
    return cache


class _CachedReport:
    """An ExecutionReport wrapper that overlays cache hits onto the
    executed results and reports the *submitted* batch — not just the
    executed remainder (everything else delegates)."""

    def __init__(
        self,
        report,
        hits: Dict[int, QueryResult],
        queries: Sequence[GroupByQuery],
    ):
        self._report = report
        self._hits = hits
        self._queries = list(queries)

    @property
    def results(self) -> Dict[int, QueryResult]:
        """Executed results overlaid with cache hits, keyed by qid."""
        merged = dict(self._report.results)
        merged.update(self._hits)
        return merged

    @property
    def n_queries(self) -> int:
        """Number of *submitted* queries (hits included), unlike the
        underlying plan's count, which covers only the executed misses."""
        return len(self._queries)

    @property
    def n_cache_hits(self) -> int:
        """How many of this batch's queries came from the cache."""
        return len(self._hits)

    def result_for(self, query: GroupByQuery) -> QueryResult:
        """The result of one submitted query, by its qid."""
        if query.qid in self._hits:
            return self._hits[query.qid]
        results = self._report.results
        if query.qid in results:
            return results[query.qid]
        from ..check.errors import PlanCoverageError

        submitted = any(q.qid == query.qid for q in self._queries)
        detail = (
            "the executed plan placed it in no class"
            if submitted
            else "it was not part of this batch"
        )
        raise PlanCoverageError(
            f"no result for {query.display_name()} (qid {query.qid}): "
            f"{detail} (batch qids: {sorted(q.qid for q in self._queries)})"
        )

    def summary(self) -> str:
        """One-line summary reflecting the full batch, hits included."""
        inner = self._report
        return (
            f"{inner.plan.algorithm}: {self.n_queries} queries "
            f"({self.n_cache_hits} from cache, {inner.plan.n_queries} "
            f"executed), {len(inner.class_executions)} class(es), "
            f"sim {inner.sim_ms:.1f} ms "
            f"(io {inner.sim_io_ms:.1f} + cpu {inner.sim_cpu_ms:.1f}), "
            f"wall {inner.wall_s * 1000:.1f} ms"
        )

    def __getattr__(self, name):
        return getattr(self._report, name)
