"""Saving and loading databases.

A :class:`~repro.engine.database.Database` round-trips through a directory:

* ``schema.json`` — dimensions (level names, member names, parent arrays),
  measure, schema name;
* ``catalog.json`` — per table: levels, clustered flag, source aggregate,
  page size, which join indexes exist (kind + dimension + level);
* ``<table>.npz`` — the table's rows as numpy arrays (keys as int64
  columns, measure as float64).

Join indexes and table statistics are *rebuilt* on load rather than
serialized: they are derived data, their builders are deterministic, and
rebuilding keeps the format small and forward-compatible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from ..schema.dimension import Dimension
from ..schema.star import StarSchema
from ..storage.iostats import CostRates
from .database import Database

FORMAT_VERSION = 1

_SAFE_NAME_TABLE = str.maketrans({"'": "_p", "(": "_", ")": "_", "*": "_s"})


def _file_stem(table_name: str) -> str:
    """A filesystem-safe stem for a table name (primes etc. translated)."""
    return table_name.translate(_SAFE_NAME_TABLE)


def save_database(db: Database, directory: str | Path) -> Path:
    """Serialize ``db`` into ``directory`` (created if needed)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    schema_doc = {
        "version": FORMAT_VERSION,
        "name": db.schema.name,
        "measure": db.schema.measure,
        "page_size": db.page_size,
        "buffer_pages": db.pool.capacity_pages,
        "dimensions": [
            {
                "name": dim.name,
                "level_names": [lv.name for lv in dim.levels],
                "member_names": [
                    [dim.member_name(depth, m) for m in range(dim.n_members(depth))]
                    for depth in range(dim.n_levels)
                ],
                "parents": [
                    dim.rollup_map(depth, depth + 1).tolist()
                    for depth in range(dim.n_levels - 1)
                ],
            }
            for dim in db.schema.dimensions
        ],
    }
    (root / "schema.json").write_text(json.dumps(schema_doc, indent=1))

    catalog_doc: Dict[str, dict] = {}
    for entry in db.catalog.entries():
        stem = _file_stem(entry.name)
        catalog_doc[entry.name] = {
            "file": f"{stem}.npz",
            "levels": list(entry.levels),
            "clustered": entry.clustered,
            "source_aggregate": entry.source_aggregate,
            "indexes": [
                {
                    "dim_index": dim_index,
                    "level": level,
                    "kind": type(index).__name__,
                }
                for (dim_index, level), index in sorted(entry.indexes.items())
            ],
        }
        rows = list(entry.table.all_rows())
        n_dims = db.schema.n_dims
        arrays = {}
        if rows:
            matrix = np.asarray(rows, dtype=np.float64)
            for d in range(n_dims):
                arrays[f"key{d}"] = matrix[:, d].astype(np.int64)
            arrays["measure"] = matrix[:, n_dims]
        else:
            for d in range(n_dims):
                arrays[f"key{d}"] = np.empty(0, dtype=np.int64)
            arrays["measure"] = np.empty(0, dtype=np.float64)
        np.savez_compressed(root / f"{stem}.npz", **arrays)
    (root / "catalog.json").write_text(json.dumps(catalog_doc, indent=1))
    return root


def load_database(
    directory: str | Path, rates: CostRates | None = None
) -> Database:
    """Reconstruct a database saved by :func:`save_database`.

    Join indexes are rebuilt from the declared metadata; statistics are not
    restored (re-run :meth:`Database.analyze` if needed).
    """
    root = Path(directory)
    schema_doc = json.loads((root / "schema.json").read_text())
    if schema_doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {schema_doc.get('version')!r}"
        )
    dimensions: List[Dimension] = []
    for doc in schema_doc["dimensions"]:
        dimensions.append(
            Dimension(
                name=doc["name"],
                level_names=doc["level_names"],
                parents=[np.asarray(p, dtype=np.int64) for p in doc["parents"]],
                member_names=doc["member_names"],
            )
        )
    schema = StarSchema(
        schema_doc["name"], dimensions, measure=schema_doc["measure"]
    )
    db = Database(
        schema,
        page_size=schema_doc["page_size"],
        buffer_pages=schema_doc["buffer_pages"],
        rates=rates,
    )
    catalog_doc = json.loads((root / "catalog.json").read_text())
    # Load base tables first so register order is stable & derivations hold.
    ordered = sorted(
        catalog_doc.items(),
        key=lambda item: (item[1]["source_aggregate"] is not None, item[0]),
    )
    from ..storage.table import HeapTable

    for name, doc in ordered:
        with np.load(root / doc["file"]) as arrays:
            keys = [arrays[f"key{d}"] for d in range(schema.n_dims)]
            measures = arrays["measure"]
            rows = [
                tuple(int(col[i]) for col in keys) + (float(measures[i]),)
                for i in range(measures.size)
            ]
        columns = [dim.name for dim in schema.dimensions]
        columns.append(schema.measure)
        table = HeapTable(name, columns, page_size=db.page_size)
        table.extend(rows)
        entry = db.catalog.register(
            table,
            tuple(doc["levels"]),
            clustered=doc["clustered"],
            source_aggregate=doc["source_aggregate"],
        )
        for index_doc in doc["indexes"]:
            kind = (
                "btree"
                if index_doc["kind"] == "PositionListJoinIndex"
                else "bitmap"
            )
            db.create_bitmap_index(
                entry.name,
                schema.dimensions[index_doc["dim_index"]].name,
                level=index_doc["level"],
                kind=kind,
            )
    return db
