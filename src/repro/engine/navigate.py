"""OLAP navigation: drill-down, roll-up, and slice derived from a query.

The interactive idiom the paper's MDX front end serves: a user looks at a
result, picks a member, and asks for the next finer (or coarser) view.
These helpers derive the follow-up :class:`GroupByQuery` from the current
one, so a client can navigate without rebuilding queries by hand — and the
follow-ups flow through the same multi-query optimizer (batch several
navigation steps in a :class:`~repro.engine.session.QuerySession` to share
their evaluation).
"""

from __future__ import annotations

from typing import Optional

from ..schema.query import DimPredicate, GroupBy, GroupByQuery
from ..schema.star import StarSchema


class NavigationError(ValueError):
    """The requested navigation step does not exist (e.g. drilling below
    the leaf level)."""


def _replace_dim_predicates(
    query: GroupByQuery,
    dim_index: int,
    new_predicate: Optional[DimPredicate],
) -> tuple:
    kept = tuple(
        p for p in query.predicates if p.dim_index != dim_index
    )
    if new_predicate is not None:
        kept = kept + (new_predicate,)
    return tuple(sorted(kept, key=lambda p: (p.dim_index, p.level)))


def drill_down(
    schema: StarSchema,
    query: GroupByQuery,
    dim_name: str,
    member_name: Optional[str] = None,
    label: str = "",
) -> GroupByQuery:
    """One level finer on ``dim_name``.

    With ``member_name`` (a member at the query's current target level),
    the new query shows that member's children only — the classic
    double-click.  Without it, the whole level expands (any existing
    predicate on the dimension is kept as-is).
    """
    d = schema.dim_index(dim_name)
    dim = schema.dimensions[d]
    level = query.groupby.levels[d]
    if level == 0:
        raise NavigationError(
            f"{dim.name!r} is already at its leaf level {dim.level_name(0)!r}"
        )
    new_level = (dim.n_levels - 1) if level == dim.all_level else level - 1
    levels = list(query.groupby.levels)
    levels[d] = new_level
    predicates = query.predicates
    if member_name is not None:
        member_level, member = dim.find_member(member_name)
        if member_level != level:
            raise NavigationError(
                f"{member_name!r} is at level "
                f"{dim.level_name(member_level)!r}, not the query's target "
                f"level {dim.level_name(level)!r}"
            )
        children = frozenset(dim.children(member_level, member))
        predicates = _replace_dim_predicates(
            query, d, DimPredicate(d, new_level, children)
        )
    return GroupByQuery(
        groupby=GroupBy(tuple(levels)),
        predicates=predicates,
        aggregate=query.aggregate,
        label=label or f"{query.display_name()}>drill({dim_name})",
    )


def roll_up(
    schema: StarSchema,
    query: GroupByQuery,
    dim_name: str,
    label: str = "",
) -> GroupByQuery:
    """One level coarser on ``dim_name`` (the top level rolls up to ALL).

    Predicates on the dimension at levels finer than the new target are
    dropped — rolled-up cells aggregate over everything the old view
    filtered within, matching the usual OLAP roll-up semantics.
    """
    d = schema.dim_index(dim_name)
    dim = schema.dimensions[d]
    level = query.groupby.levels[d]
    if level == dim.all_level:
        raise NavigationError(
            f"{dim.name!r} is already fully aggregated (ALL)"
        )
    new_level = level + 1
    levels = list(query.groupby.levels)
    levels[d] = new_level
    kept = tuple(
        p
        for p in query.predicates
        if p.dim_index != d or p.level >= new_level
    )
    return GroupByQuery(
        groupby=GroupBy(tuple(levels)),
        predicates=kept,
        aggregate=query.aggregate,
        label=label or f"{query.display_name()}>rollup({dim_name})",
    )


def slice_member(
    schema: StarSchema,
    query: GroupByQuery,
    dim_name: str,
    member_name: str,
    label: str = "",
) -> GroupByQuery:
    """Restrict the query to one member (at that member's own level),
    replacing any predicates on the dimension at-or-above that level."""
    d = schema.dim_index(dim_name)
    dim = schema.dimensions[d]
    member_level, member = dim.find_member(member_name)
    kept = tuple(
        p
        for p in query.predicates
        if p.dim_index != d or p.level < member_level
    )
    predicates = tuple(
        sorted(
            kept + (DimPredicate(d, member_level, frozenset({member})),),
            key=lambda p: (p.dim_index, p.level),
        )
    )
    levels = list(query.groupby.levels)
    levels[d] = min(levels[d], member_level)
    return GroupByQuery(
        groupby=GroupBy(tuple(levels)),
        predicates=predicates,
        aggregate=query.aggregate,
        label=label or f"{query.display_name()}>slice({member_name})",
    )
