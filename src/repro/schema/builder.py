"""A fluent builder for star schemas.

Constructing a :class:`Dimension` by hand means assembling parent arrays and
member-name lists; the builder offers the two idioms real schemas use —
balanced hierarchies by fanout, and explicit parent-name mappings — and
validates as it goes.

Example::

    schema = (
        SchemaBuilder("RetailCube", measure="revenue")
        .balanced_dimension(
            "Product", levels=("SKU", "Category", "Department"),
            top_members=("Grocery", "Electronics"), fanouts=(4, 25),
        )
        .dimension("Region")
            .level("Country", ["US", "JP"])
            .level("City", {"NYC": "US", "SF": "US", "Tokyo": "JP"})
            .level("Store", {"S1": "NYC", "S2": "SF", "S3": "Tokyo"})
            .done()
        .build()
    )

Levels are declared *coarsest first* (the natural way people describe
hierarchies); the builder reverses them into the engine's finest-first
representation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .dimension import Dimension
from .star import StarSchema

LevelSpec = Union[Sequence[str], Mapping[str, str]]


class DimensionBuilder:
    """Accumulates levels (coarsest first) for one explicit dimension."""

    def __init__(self, parent: "SchemaBuilder", name: str):
        self._parent = parent
        self.name = name
        self._level_names: List[str] = []
        self._members: List[List[str]] = []  # coarsest first
        self._parent_names: List[Optional[Mapping[str, str]]] = []

    def level(self, level_name: str, members: LevelSpec) -> "DimensionBuilder":
        """Add the next (finer) level.

        The first level takes a plain list of member names; every deeper
        level takes a mapping ``member -> parent member`` (parents must be
        members of the previous level)."""
        if not members:
            raise ValueError(
                f"level {level_name!r} of {self.name!r} needs members"
            )
        if not self._level_names:
            if isinstance(members, Mapping):
                raise ValueError(
                    f"the top level {level_name!r} takes a list of names, "
                    f"not a parent mapping"
                )
            self._members.append(list(members))
            self._parent_names.append(None)
        else:
            if not isinstance(members, Mapping):
                raise ValueError(
                    f"level {level_name!r} needs a member -> parent mapping "
                    f"(its parents live at {self._level_names[-1]!r})"
                )
            previous = set(self._members[-1])
            bad = [p for p in members.values() if p not in previous]
            if bad:
                raise ValueError(
                    f"unknown parent(s) {sorted(set(bad))} for level "
                    f"{level_name!r}; parents must be members of "
                    f"{self._level_names[-1]!r}"
                )
            self._members.append(list(members))
            self._parent_names.append(dict(members))
        self._level_names.append(level_name)
        return self

    def done(self) -> "SchemaBuilder":
        """Finish this dimension and return to the schema builder."""
        if len(self._level_names) < 1:
            raise ValueError(f"dimension {self.name!r} has no levels")
        # Convert to the engine's finest-first representation.
        level_names = list(reversed(self._level_names))
        member_names = list(reversed(self._members))
        parents: List[np.ndarray] = []
        for depth in range(len(level_names) - 1):
            fine = member_names[depth]
            coarse = member_names[depth + 1]
            coarse_ids = {name: i for i, name in enumerate(coarse)}
            mapping = self._parent_names[len(level_names) - 1 - depth]
            assert mapping is not None
            parents.append(
                np.asarray(
                    [coarse_ids[mapping[name]] for name in fine],
                    dtype=np.int64,
                )
            )
        dimension = Dimension(
            name=self.name,
            level_names=level_names,
            parents=parents,
            member_names=member_names,
        )
        self._parent._add(dimension)
        return self._parent


class SchemaBuilder:
    """Fluent construction of a :class:`StarSchema`."""

    def __init__(self, name: str, measure: str = "value"):
        self.name = name
        self.measure = measure
        self._dimensions: List[Dimension] = []

    def _add(self, dimension: Dimension) -> None:
        if any(d.name == dimension.name for d in self._dimensions):
            raise ValueError(f"duplicate dimension {dimension.name!r}")
        self._dimensions.append(dimension)

    def dimension(self, name: str) -> DimensionBuilder:
        """Start an explicit dimension (declare levels coarsest first)."""
        return DimensionBuilder(self, name)

    def balanced_dimension(
        self,
        name: str,
        levels: Sequence[str],
        top_members: Sequence[str],
        fanouts: Sequence[int],
        member_prefixes: Optional[Sequence[str]] = None,
    ) -> "SchemaBuilder":
        """Add a balanced hierarchy.

        ``levels`` are given finest first (matching
        :meth:`Dimension.build_uniform`); ``fanouts[j]`` is the children
        count one step below the top, then the next, etc."""
        dimension = Dimension.build_uniform(
            name,
            level_names=levels,
            n_top=len(top_members),
            fanouts=fanouts,
            member_prefixes=member_prefixes,
        )
        # Rename the top members to the requested names.
        top_depth = dimension.n_levels - 1
        for i, member_name in enumerate(top_members):
            old = dimension.member_name(top_depth, i)
            if old != member_name:
                dimension._member_names[top_depth][i] = member_name  # noqa: SLF001
                del dimension._name_lookup[old]  # noqa: SLF001
                if member_name in dimension._name_lookup:  # noqa: SLF001
                    raise ValueError(
                        f"duplicate member name {member_name!r}"
                    )
                dimension._name_lookup[member_name] = (top_depth, i)  # noqa: SLF001
        self._add(dimension)
        return self

    def build(self) -> StarSchema:
        """Finalize and return the constructed object."""
        if not self._dimensions:
            raise ValueError(f"schema {self.name!r} has no dimensions")
        return StarSchema(self.name, self._dimensions, measure=self.measure)
