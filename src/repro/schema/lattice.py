"""The group-by lattice: derivability, enumeration, and size estimation.

Choosing which materialized group-by to compute a query from is the heart of
all three of the paper's algorithms.  This module provides the lattice
predicates they rely on, plus the standard cardinality estimators used by the
cost model:

* Cardenas' formula for the expected number of distinct groups when ``n``
  rows fall uniformly into ``m`` possible groups;
* the same formula for the expected number of distinct *pages* touched by a
  random probe of ``k`` rows — the dominant term of index-join I/O cost.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, List, Sequence, Tuple

from .query import Aggregate, GroupBy, GroupByQuery
from .star import StarSchema


def can_answer(source_levels: Sequence[int], query: GroupByQuery) -> bool:
    """True if a table storing ``source_levels`` can answer ``query``
    (levels only; see :func:`source_can_answer` for the aggregate rule)."""
    return query.answerable_from(source_levels)


def aggregate_compatible(
    query_aggregate: Aggregate, source_aggregate: Optional[str]
) -> bool:
    """Can a query with ``query_aggregate`` be computed from a table whose
    measure holds ``source_aggregate``?

    Raw base data (``source_aggregate is None``) supports every aggregate.
    A materialized group-by only supports the aggregate it was built with:
    SUMs re-aggregate by summing, MIN by min, MAX by max, and COUNTs
    re-aggregate by *summing* the stored counts.  AVG is algebraic — an AVG
    of AVGs is wrong — so AVG queries are answerable from raw data only.
    """
    if source_aggregate is None:
        return True
    if query_aggregate is Aggregate.AVG:
        return False
    return query_aggregate.value == source_aggregate


def effective_aggregate(
    query_aggregate: Aggregate, source_aggregate: Optional[str]
) -> Aggregate:
    """The fold to apply over the *source's* measure column when answering
    a ``query_aggregate`` query: identical to the query's aggregate except
    that COUNT over a COUNT view sums the stored counts."""
    if source_aggregate == "count" and query_aggregate is Aggregate.COUNT:
        return Aggregate.SUM
    return query_aggregate


def source_can_answer(
    source_levels: Sequence[int],
    source_aggregate: Optional[str],
    query: GroupByQuery,
) -> bool:
    """Full answerability: fine-enough levels *and* a compatible measure."""
    return query.answerable_from(source_levels) and aggregate_compatible(
        query.aggregate, source_aggregate
    )


def common_sources(
    source_candidates: Iterable[Tuple[str, Sequence[int]]],
    queries: Sequence[GroupByQuery],
) -> List[str]:
    """Names of candidate tables able to answer *all* of ``queries``."""
    return [
        name
        for name, levels in source_candidates
        if all(can_answer(levels, q) for q in queries)
    ]


def expected_distinct(m: float, n: float) -> float:
    """Cardenas: expected distinct values when n items draw uniformly from a
    domain of size m."""
    if m <= 0 or n <= 0:
        return 0.0
    if n / m > 50:  # saturated; avoids pow underflow
        return float(m)
    return m * (1.0 - (1.0 - 1.0 / m) ** n)


def groupby_domain_size(schema: StarSchema, levels: Sequence[int]) -> int:
    """Size of the cross-product domain of a group-by's level members."""
    size = 1
    for dim, level in zip(schema.dimensions, levels):
        size *= dim.n_members(level)
    return size


def estimate_groupby_rows(
    schema: StarSchema, levels: Sequence[int], n_base_rows: int
) -> int:
    """Expected row count of the group-by ``levels`` over a base table of
    ``n_base_rows`` uniformly distributed fact rows."""
    domain = groupby_domain_size(schema, levels)
    return max(1, round(expected_distinct(domain, n_base_rows)))


def estimate_result_groups(
    schema: StarSchema, query: GroupByQuery, n_source_rows: int
) -> float:
    """Expected number of output groups of ``query`` evaluated on a source
    with ``n_source_rows`` rows: the predicate-restricted target domain,
    capped by the number of contributing rows."""
    domain = 1.0
    for dim_index, level in enumerate(query.groupby.levels):
        dim = schema.dimensions[dim_index]
        members = dim.n_members(level)
        pred = query.predicate_on(dim_index)
        if pred is not None:
            if pred.level >= level:
                # Predicate at-or-above the target level: each kept coarse
                # member fans out to its share of target members.
                members = members * pred.selectivity(schema)
            else:
                members = min(members, len(pred.member_ids))
        domain *= max(1.0, members)
    contributing = n_source_rows * query.selectivity(schema)
    return max(1.0, expected_distinct(domain, contributing))


def expected_pages_touched(n_rows: int, n_pages: int, k_rows: float) -> float:
    """Expected distinct pages containing at least one of ``k_rows`` rows
    drawn uniformly from a table of ``n_rows`` rows on ``n_pages`` pages."""
    if n_pages <= 0 or k_rows <= 0:
        return 0.0
    k = min(float(k_rows), float(n_rows))
    return expected_distinct(n_pages, k)


def enumerate_lattice(schema: StarSchema) -> Iterator[GroupBy]:
    """Every group-by of the schema, finest (LL) first, coarsest (ALL) last."""
    ranges = [range(dim.all_level + 1) for dim in schema.dimensions]
    points = sorted(
        itertools.product(*ranges), key=lambda levels: (sum(levels), levels)
    )
    for levels in points:
        yield GroupBy(tuple(levels))


def lattice_size(schema: StarSchema) -> int:
    """Number of group-bys in the lattice (incl. ALL pseudo-levels)."""
    return math.prod(dim.all_level + 1 for dim in schema.dimensions)


def ancestors(schema: StarSchema, groupby: GroupBy) -> Iterator[GroupBy]:
    """Group-bys derivable *from* ``groupby`` (coarser-or-equal everywhere),
    excluding ``groupby`` itself."""
    ranges = [
        range(level, dim.all_level + 1)
        for dim, level in zip(schema.dimensions, groupby.levels)
    ]
    for levels in itertools.product(*ranges):
        candidate = GroupBy(tuple(levels))
        if candidate != groupby:
            yield candidate


def descendants(schema: StarSchema, groupby: GroupBy) -> Iterator[GroupBy]:
    """Group-bys that can derive ``groupby`` (finer-or-equal everywhere),
    excluding ``groupby`` itself."""
    ranges = [range(0, level + 1) for level in groupby.levels]
    for levels in itertools.product(*ranges):
        candidate = GroupBy(tuple(levels))
        if candidate != groupby:
            yield candidate
