"""Star-schema metadata: the fact table's dimensions and measure.

Group-bys are written the way the paper writes them: one symbol per
dimension, primed by level (``A`` leaf, ``A'`` mid, ``A''`` top); a dimension
aggregated to ALL is omitted from the name.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .dimension import Dimension


class StarSchema:
    """The logical star schema: ordered dimensions plus one measure."""

    def __init__(
        self,
        name: str,
        dimensions: Sequence[Dimension],
        measure: str = "dollars",
    ):
        if not dimensions:
            raise ValueError("a star schema needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        self.name = name
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self.measure = measure
        self._dim_index: Dict[str, int] = {
            d.name: i for i, d in enumerate(self.dimensions)
        }

    @property
    def n_dims(self) -> int:
        """Number of dimensions."""
        return len(self.dimensions)

    def dim_index(self, name: str) -> int:
        """Position of a dimension by name (KeyError if unknown)."""
        try:
            return self._dim_index[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no dimension {name!r}; "
                f"dimensions: {list(self._dim_index)}"
            ) from None

    def dimension(self, name: str) -> Dimension:
        """Dimension object by name."""
        return self.dimensions[self.dim_index(name)]

    def base_levels(self) -> Tuple[int, ...]:
        """The lowest-level (LL) group-by: every dimension at its leaf."""
        return tuple(0 for _ in self.dimensions)

    def all_levels(self) -> Tuple[int, ...]:
        """The fully aggregated group-by: every dimension at ALL."""
        return tuple(d.all_level for d in self.dimensions)

    def check_levels(self, levels: Sequence[int]) -> Tuple[int, ...]:
        """Validate a per-dimension level vector (ALL allowed) and return it
        as a tuple."""
        if len(levels) != self.n_dims:
            raise ValueError(
                f"level vector {tuple(levels)} has {len(levels)} entries, "
                f"schema has {self.n_dims} dimensions"
            )
        for dim, level in zip(self.dimensions, levels):
            if not 0 <= level <= dim.all_level:
                raise ValueError(
                    f"level {level} out of range for dimension {dim.name!r} "
                    f"(0..{dim.all_level})"
                )
        return tuple(int(lv) for lv in levels)

    def groupby_name(self, levels: Sequence[int]) -> str:
        """Render a level vector in paper notation, e.g. ``A'B''C''D``."""
        levels = self.check_levels(levels)
        parts: List[str] = []
        for dim, level in zip(self.dimensions, levels):
            if level == dim.all_level:
                continue
            parts.append(dim.name + "'" * level)
        return "".join(parts) if parts else "(all)"

    def parse_groupby_name(self, text: str) -> Tuple[int, ...]:
        """Inverse of :meth:`groupby_name` for paper-style strings.

        Dimensions absent from the string are set to their ALL level.
        Dimension names must be single characters for this notation (as in
        the paper's A/B/C/D schema).
        """
        levels = {d.name: d.all_level for d in self.dimensions}
        i = 0
        while i < len(text):
            ch = text[i]
            if ch not in self._dim_index:
                raise ValueError(
                    f"unexpected character {ch!r} in group-by name {text!r}"
                )
            i += 1
            primes = 0
            while i < len(text) and text[i] == "'":
                primes += 1
                i += 1
            dim = self.dimension(ch)
            if primes >= dim.n_levels:
                raise ValueError(
                    f"{ch}{primes * chr(39)} names a level deeper than "
                    f"dimension {ch!r} has"
                )
            levels[ch] = primes
        return tuple(levels[d.name] for d in self.dimensions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = ", ".join(d.name for d in self.dimensions)
        return f"StarSchema({self.name!r}, dims=[{dims}], measure={self.measure!r})"
