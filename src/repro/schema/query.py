"""Group-by queries: the relational form of one MDX component query.

Each component query of an MDX expression is, in relational terms, a
star join followed by aggregation at some level of each dimension hierarchy
(paper, Section 2).  We capture that as a target :class:`GroupBy` plus at
most one :class:`DimPredicate` per dimension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

from .star import StarSchema


@dataclass(frozen=True, order=True)
class GroupBy:
    """A point in the group-by lattice: one hierarchy depth per dimension."""

    levels: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(int(lv) for lv in self.levels))

    @property
    def n_dims(self) -> int:
        """Number of dimensions."""
        return len(self.levels)

    def level(self, dim_index: int) -> int:
        """Hierarchy depth of one dimension."""
        return self.levels[dim_index]

    def level_sum(self) -> int:
        """The paper's ``GroupbyLevel``: total coarseness (smaller = finer)."""
        return sum(self.levels)

    def derivable_from(self, source: "GroupBy") -> bool:
        """True if this group-by can be computed from ``source`` — i.e.
        ``source`` is at least as fine on every dimension."""
        if len(source.levels) != len(self.levels):
            raise ValueError("group-bys belong to different schemas")
        return all(s <= t for s, t in zip(source.levels, self.levels))

    def name(self, schema: StarSchema) -> str:
        """Display name."""
        return schema.groupby_name(self.levels)

    @classmethod
    def parse(cls, schema: StarSchema, text: str) -> "GroupBy":
        """Parse the textual form into an instance."""
        return cls(schema.parse_groupby_name(text))


class Aggregate(Enum):
    """Supported aggregate functions.

    SUM/COUNT/MIN/MAX are distributive (re-aggregable from a same-kind
    view); AVG is algebraic — it is computed from raw data as SUM/COUNT and
    cannot be re-aggregated from an AVG rollup, so AVG views cannot be
    materialized (see :func:`repro.schema.lattice.aggregate_compatible`).
    """

    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class DimPredicate:
    """Selection on one dimension: value rolled up to ``level`` must be one
    of ``member_ids`` (the relational form of an MDX axis/filter set)."""

    dim_index: int
    level: int
    member_ids: frozenset

    def __post_init__(self) -> None:
        object.__setattr__(self, "member_ids", frozenset(self.member_ids))
        if not self.member_ids:
            raise ValueError("a predicate needs at least one member")

    def selectivity(self, schema: StarSchema) -> float:
        """Fraction of the dimension's domain this predicate keeps, assuming
        uniform membership (the standard optimizer assumption)."""
        n = schema.dimensions[self.dim_index].n_members(self.level)
        return min(1.0, len(self.member_ids) / n)

    def describe(self, schema: StarSchema) -> str:
        """Human-readable one-line/short rendering for display."""
        dim = schema.dimensions[self.dim_index]
        names = sorted(dim.member_name(self.level, m) for m in self.member_ids)
        shown = ", ".join(names[:4]) + (", …" if len(names) > 4 else "")
        return f"{dim.level_name(self.level)} IN ({shown})"


_query_ids = itertools.count(1)


@dataclass(frozen=True)
class GroupByQuery:
    """One dimensional query: target group-by, predicates, and aggregate.

    ``label`` is a display name ("Query 5"); ``qid`` is unique per process so
    plans can reference queries stably even when two queries are otherwise
    identical.
    """

    groupby: GroupBy
    predicates: Tuple[DimPredicate, ...] = ()
    aggregate: Aggregate = Aggregate.SUM
    label: str = ""
    qid: int = field(default_factory=lambda: next(_query_ids))

    def predicate_on(self, dim_index: int) -> Optional[DimPredicate]:
        """The first (typically only) predicate on one dimension, if any.

        A dimension may carry several predicates — e.g. an MDX axis at month
        level combined with a year-level slicer; they are ANDed.
        """
        for pred in self.predicates:
            if pred.dim_index == dim_index:
                return pred
        return None

    def predicates_on(self, dim_index: int) -> Tuple[DimPredicate, ...]:
        """All predicates on one dimension (ANDed at evaluation)."""
        return tuple(p for p in self.predicates if p.dim_index == dim_index)

    def required_levels(self) -> Tuple[int, ...]:
        """Per dimension, the finest level the source table must provide:
        the finer of the target level and any predicate level."""
        required = list(self.groupby.levels)
        for pred in self.predicates:
            required[pred.dim_index] = min(required[pred.dim_index], pred.level)
        return tuple(required)

    def answerable_from(self, source_levels: Sequence[int]) -> bool:
        """True if a table storing ``source_levels`` can answer this query."""
        required = self.required_levels()
        if len(source_levels) != len(required):
            raise ValueError("source has a different number of dimensions")
        return all(s <= r for s, r in zip(source_levels, required))

    def selectivity(self, schema: StarSchema) -> float:
        """Estimated fraction of source rows passing all predicates."""
        sel = 1.0
        for pred in self.predicates:
            sel *= pred.selectivity(schema)
        return sel

    def validate(self, schema: StarSchema) -> None:
        """Raise if the query is not well-formed against ``schema``."""
        schema.check_levels(self.groupby.levels)
        for pred in self.predicates:
            dim = schema.dimensions[pred.dim_index]
            if not 0 <= pred.level < dim.n_levels:
                raise ValueError(
                    f"predicate level {pred.level} invalid for dimension "
                    f"{dim.name!r}"
                )
            n = dim.n_members(pred.level)
            bad = [m for m in pred.member_ids if not 0 <= m < n]
            if bad:
                raise ValueError(
                    f"predicate members {bad} out of range for "
                    f"{dim.level_name(pred.level)}"
                )

    def describe(self, schema: StarSchema) -> str:
        """Human-readable one-line/short rendering for display."""
        head = self.label or f"Q{self.qid}"
        preds = " AND ".join(p.describe(schema) for p in self.predicates)
        where = f" WHERE {preds}" if preds else ""
        return (
            f"{head}: {self.aggregate.value.upper()}({schema.measure}) "
            f"GROUP BY {self.groupby.name(schema)}{where}"
        )

    def display_name(self) -> str:
        """Label if set, else the stable Q<qid> form."""
        return self.label or f"Q{self.qid}"


def query_sort_key(query: GroupByQuery) -> Tuple[int, Tuple[int, ...], int]:
    """The ETPLG/GG processing order ("Sort G by GroupbyLevel"): finest
    target group-bys first, deterministic ties."""
    return (query.groupby.level_sum(), query.groupby.levels, query.qid)
