"""Dimensions with multi-level hierarchies.

A dimension stores its hierarchy as dense integer member ids per level plus
parent arrays linking each level to the next coarser one.  Level depth 0 is
the finest (leaf) level; depth ``n_levels - 1`` is the coarsest real level;
depth ``n_levels`` is the implicit ALL pseudo-level with a single member.

For the paper's schema each dimension ``X`` has the three-level hierarchy
``X → X' → X''`` where the top level has three members (X1, X2, X3) and
member names grow one letter per step down (A1 → AA1..AAk → AAA1..), matching
the names used in the paper's Queries 1–9 (``A'.A1.CHILDREN.AA2`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Level:
    """One hierarchy level: its display name and depth (0 = leaf)."""

    name: str
    depth: int


class Dimension:
    """A dimension table with a single linear hierarchy.

    Parameters
    ----------
    name:
        Dimension name, e.g. ``"A"``.
    level_names:
        Level display names from finest to coarsest, e.g.
        ``("A", "A'", "A''")``.
    parents:
        ``parents[i]`` maps member ids of level ``i`` to member ids of level
        ``i + 1``; there are ``n_levels - 1`` arrays.
    member_names:
        Per level (finest → coarsest), the display name of each member.
    """

    def __init__(
        self,
        name: str,
        level_names: Sequence[str],
        parents: Sequence[np.ndarray],
        member_names: Sequence[Sequence[str]],
    ):
        if len(level_names) < 1:
            raise ValueError("a dimension needs at least one level")
        if len(parents) != len(level_names) - 1:
            raise ValueError(
                f"need {len(level_names) - 1} parent arrays, got {len(parents)}"
            )
        if len(member_names) != len(level_names):
            raise ValueError("member_names must cover every level")
        self.name = name
        self.levels: Tuple[Level, ...] = tuple(
            Level(n, d) for d, n in enumerate(level_names)
        )
        self._parents: List[np.ndarray] = [
            np.asarray(p, dtype=np.int64) for p in parents
        ]
        self._member_names: List[List[str]] = [list(ns) for ns in member_names]
        self._validate()
        self._name_lookup: Dict[str, Tuple[int, int]] = {}
        for depth, names in enumerate(self._member_names):
            for member_id, member_name in enumerate(names):
                if member_name in self._name_lookup:
                    raise ValueError(
                        f"duplicate member name {member_name!r} in dimension "
                        f"{name!r}"
                    )
                self._name_lookup[member_name] = (depth, member_id)
        self._rollup_cache: Dict[Tuple[int, int], np.ndarray] = {}

    def _validate(self) -> None:
        for depth, parent in enumerate(self._parents):
            n_from = len(self._member_names[depth])
            n_to = len(self._member_names[depth + 1])
            if parent.shape != (n_from,):
                raise ValueError(
                    f"parent array at depth {depth} has shape {parent.shape}, "
                    f"expected ({n_from},)"
                )
            if n_from and (parent.min() < 0 or parent.max() >= n_to):
                raise ValueError(
                    f"parent ids at depth {depth} out of range 0..{n_to - 1}"
                )

    # -- geometry ---------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        """Number of real levels (ALL excluded)."""
        return len(self.levels)

    @property
    def all_level(self) -> int:
        """Depth of the implicit ALL pseudo-level."""
        return self.n_levels

    def n_members(self, depth: int) -> int:
        """Number of members at the given level."""
        if depth == self.all_level:
            return 1
        self._check_depth(depth)
        return len(self._member_names[depth])

    def level_name(self, depth: int) -> str:
        """Display name of one hierarchy level (ALL included)."""
        if depth == self.all_level:
            return f"{self.name}.ALL"
        self._check_depth(depth)
        return self.levels[depth].name

    def level_depth(self, level_name: str) -> int:
        """Depth of a level by its display name (KeyError if unknown)."""
        for level in self.levels:
            if level.name == level_name:
                return level.depth
        raise KeyError(
            f"dimension {self.name!r} has no level {level_name!r}; "
            f"levels: {[lv.name for lv in self.levels]}"
        )

    def _check_depth(self, depth: int) -> None:
        if not 0 <= depth < self.n_levels:
            raise IndexError(
                f"level depth {depth} out of range for dimension "
                f"{self.name!r} (0..{self.n_levels - 1})"
            )

    # -- members ------------------------------------------------------------------

    def member_name(self, depth: int, member_id: int) -> str:
        """Display name of one member."""
        if depth == self.all_level:
            return f"All {self.name}"
        self._check_depth(depth)
        return self._member_names[depth][member_id]

    def member_id(self, depth: int, name: str) -> int:
        """Member id by name at an exact level (KeyError otherwise)."""
        found = self._name_lookup.get(name)
        if found is None or found[0] != depth:
            raise KeyError(
                f"no member {name!r} at level {self.level_name(depth)!r} "
                f"of dimension {self.name!r}"
            )
        return found[1]

    def find_member(self, name: str) -> Tuple[int, int]:
        """Locate a member by name anywhere in the hierarchy → (depth, id)."""
        found = self._name_lookup.get(name)
        if found is None:
            raise KeyError(
                f"dimension {self.name!r} has no member named {name!r}"
            )
        return found

    def has_member(self, name: str) -> bool:
        """Whether any level has a member with this name."""
        return name in self._name_lookup

    # -- hierarchy navigation --------------------------------------------------------

    def parent(self, depth: int, member_id: int) -> int:
        """The id of this member's parent at depth + 1."""
        self._check_depth(depth)
        if depth + 1 == self.all_level:
            return 0
        return int(self._parents[depth][member_id])

    def rollup_map(self, from_depth: int, to_depth: int) -> np.ndarray:
        """Array mapping member ids at ``from_depth`` to ids at the coarser
        ``to_depth`` (``to_depth == ALL`` maps everything to 0)."""
        if to_depth < from_depth:
            raise ValueError(
                f"cannot roll up downwards: {from_depth} -> {to_depth}"
            )
        key = (from_depth, to_depth)
        cached = self._rollup_cache.get(key)
        if cached is not None:
            return cached
        if to_depth == self.all_level:
            out = np.zeros(self.n_members(from_depth), dtype=np.int64)
        else:
            self._check_depth(from_depth)
            self._check_depth(to_depth)
            out = np.arange(self.n_members(from_depth), dtype=np.int64)
            for depth in range(from_depth, to_depth):
                out = self._parents[depth][out]
        out.setflags(write=False)
        self._rollup_cache[key] = out
        return out

    def rollup(self, from_depth: int, to_depth: int, member_id: int) -> int:
        """Roll one member id up to a coarser level."""
        return int(self.rollup_map(from_depth, to_depth)[member_id])

    def children(self, depth: int, member_id: int) -> List[int]:
        """Member ids at ``depth - 1`` whose parent is ``member_id``."""
        if depth == self.all_level:
            if member_id != 0:
                raise IndexError("the ALL level has a single member, id 0")
            return list(range(self.n_members(self.n_levels - 1)))
        self._check_depth(depth)
        if depth == 0:
            raise ValueError(
                f"leaf level of dimension {self.name!r} has no children"
            )
        parent = self._parents[depth - 1]
        return np.flatnonzero(parent == member_id).tolist()

    def descendants(
        self, depth: int, member_id: int, target_depth: int
    ) -> List[int]:
        """Member ids at the finer ``target_depth`` that roll up into
        ``member_id`` at ``depth``."""
        if target_depth > depth:
            raise ValueError("target level must be finer (smaller depth)")
        if target_depth == depth:
            return [member_id]
        mapping = self.rollup_map(target_depth, depth)
        return np.flatnonzero(mapping == member_id).tolist()

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def build_uniform(
        cls,
        name: str,
        level_names: Sequence[str],
        n_top: int,
        fanouts: Sequence[int],
        member_prefixes: Optional[Sequence[str]] = None,
    ) -> "Dimension":
        """Build a balanced hierarchy top-down.

        ``fanouts[j]`` is the number of children each member at depth
        ``n_levels - 1 - j`` has at the next finer level; hence
        ``len(fanouts) == n_levels - 1``.  Member names default to the
        paper's convention: one extra letter per step down (A1, AA1, AAA1…).
        """
        n_levels = len(level_names)
        if len(fanouts) != n_levels - 1:
            raise ValueError(
                f"need {n_levels - 1} fanouts for {n_levels} levels, "
                f"got {len(fanouts)}"
            )
        if n_top <= 0 or any(f <= 0 for f in fanouts):
            raise ValueError("n_top and all fanouts must be positive")
        if member_prefixes is None:
            member_prefixes = [
                name * (n_levels - depth) for depth in range(n_levels)
            ]
        elif len(member_prefixes) != n_levels:
            raise ValueError("member_prefixes must cover every level")

        counts = [0] * n_levels
        counts[n_levels - 1] = n_top
        for j, fanout in enumerate(fanouts):
            depth = n_levels - 2 - j
            counts[depth] = counts[depth + 1] * fanout

        parents: List[np.ndarray] = []
        for depth in range(n_levels - 1):
            fanout = counts[depth] // counts[depth + 1]
            parents.append(
                np.repeat(np.arange(counts[depth + 1], dtype=np.int64), fanout)
            )
        member_names = [
            [f"{member_prefixes[depth]}{i + 1}" for i in range(counts[depth])]
            for depth in range(n_levels)
        ]
        return cls(name, level_names, parents, member_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = " -> ".join(
            f"{lv.name}({self.n_members(lv.depth)})" for lv in self.levels
        )
        return f"Dimension({self.name!r}: {shape})"
