"""Star-schema metadata: dimensions, hierarchies, group-by queries, lattice."""

from .builder import DimensionBuilder, SchemaBuilder
from .dimension import Dimension, Level
from .lattice import (
    aggregate_compatible,
    ancestors,
    can_answer,
    common_sources,
    descendants,
    effective_aggregate,
    enumerate_lattice,
    estimate_groupby_rows,
    estimate_result_groups,
    expected_distinct,
    expected_pages_touched,
    groupby_domain_size,
    lattice_size,
    source_can_answer,
)
from .query import Aggregate, DimPredicate, GroupBy, GroupByQuery, query_sort_key
from .star import StarSchema

__all__ = [
    "Aggregate",
    "DimPredicate",
    "Dimension",
    "DimensionBuilder",
    "GroupBy",
    "GroupByQuery",
    "Level",
    "SchemaBuilder",
    "StarSchema",
    "aggregate_compatible",
    "ancestors",
    "can_answer",
    "common_sources",
    "descendants",
    "effective_aggregate",
    "enumerate_lattice",
    "estimate_groupby_rows",
    "estimate_result_groups",
    "expected_distinct",
    "expected_pages_touched",
    "groupby_domain_size",
    "lattice_size",
    "query_sort_key",
    "source_can_answer",
]
