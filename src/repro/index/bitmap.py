"""Word-packed bitmaps.

Bitmaps are the workhorse of the paper's index-based star join: per-dimension
bitmaps are OR-ed within a dimension, AND-ed across dimensions, and (in the
shared index join of Section 3.2) the per-query result bitmaps are OR-ed so
the base table is probed only once.

Bits index global row positions of one table.  The implementation packs bits
into a ``numpy`` ``uint64`` array so the AND/OR/NOT kernels run at word
granularity — which is also the unit the cost model charges
(:meth:`~repro.storage.iostats.IOStats.charge_bitmap_words`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

WORD_BITS = 64


def _n_words(n_bits: int) -> int:
    return (n_bits + WORD_BITS - 1) // WORD_BITS


class Bitmap:
    """A fixed-length bitmap over row positions ``0 .. n_bits-1``."""

    __slots__ = ("n_bits", "words")

    def __init__(self, n_bits: int, words: np.ndarray | None = None):
        if n_bits < 0:
            raise ValueError("bitmap length cannot be negative")
        self.n_bits = n_bits
        if words is None:
            words = np.zeros(_n_words(n_bits), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (_n_words(n_bits),):
                raise ValueError("words array has wrong dtype or shape")
        self.words = words

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zeros(cls, n_bits: int) -> "Bitmap":
        """An all-clear bitmap of the given length."""
        return cls(n_bits)

    @classmethod
    def ones(cls, n_bits: int) -> "Bitmap":
        """An all-set bitmap of the given length (tail bits masked)."""
        bm = cls(n_bits)
        bm.words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        bm._mask_tail()
        return bm

    @classmethod
    def from_positions(cls, n_bits: int, positions: Iterable[int]) -> "Bitmap":
        """A bitmap with exactly the given positions set."""
        bm = cls(n_bits)
        pos = np.fromiter(positions, dtype=np.int64)
        if pos.size:
            if pos.min() < 0 or pos.max() >= n_bits:
                raise IndexError("position out of bitmap range")
            np.bitwise_or.at(
                bm.words,
                pos // WORD_BITS,
                np.uint64(1) << (pos % WORD_BITS).astype(np.uint64),
            )
        return bm

    @classmethod
    def from_bool_array(cls, mask: np.ndarray) -> "Bitmap":
        """Build from a boolean numpy array of length ``n_bits``."""
        mask = np.asarray(mask, dtype=bool)
        bm = cls(mask.size)
        padded = np.zeros(_n_words(mask.size) * WORD_BITS, dtype=bool)
        padded[: mask.size] = mask
        # numpy packs bits MSB-first per byte; flip within bytes to get
        # LSB-first order consistent with our (pos % 64) shift convention.
        bits = padded.reshape(-1, 8)[:, ::-1]
        bm.words = np.packbits(bits.reshape(-1)).view(np.uint64).copy()
        return bm

    # -- bit access -----------------------------------------------------------

    def get(self, position: int) -> bool:
        """Look an entry up (None/raise per class contract)."""
        if not 0 <= position < self.n_bits:
            raise IndexError(f"bit {position} out of range 0..{self.n_bits - 1}")
        word, offset = divmod(position, WORD_BITS)
        return bool((int(self.words[word]) >> offset) & 1)

    def set(self, position: int, value: bool = True) -> None:
        """Set (or clear) one bit."""
        if not 0 <= position < self.n_bits:
            raise IndexError(f"bit {position} out of range 0..{self.n_bits - 1}")
        word, offset = divmod(position, WORD_BITS)
        if value:
            self.words[word] |= np.uint64(1) << np.uint64(offset)
        else:
            self.words[word] &= ~(np.uint64(1) << np.uint64(offset))

    # -- algebra ---------------------------------------------------------------

    def _check_compatible(self, other: "Bitmap") -> None:
        if self.n_bits != other.n_bits:
            raise ValueError(
                f"bitmap length mismatch: {self.n_bits} vs {other.n_bits}"
            )

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check_compatible(other)
        return Bitmap(self.n_bits, self.words & other.words)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_compatible(other)
        return Bitmap(self.n_bits, self.words | other.words)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        self._check_compatible(other)
        return Bitmap(self.n_bits, self.words ^ other.words)

    def __invert__(self) -> "Bitmap":
        bm = Bitmap(self.n_bits, ~self.words)
        bm._mask_tail()
        return bm

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.n_bits == other.n_bits and bool(
            np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:  # bitmaps are mutable; identity hash is unsafe
        raise TypeError("Bitmap is unhashable")

    # -- inspection -------------------------------------------------------------

    @property
    def n_words(self) -> int:
        """Number of 64-bit words backing the bitmap."""
        return self.words.size

    def count(self) -> int:
        """Number of set bits."""
        return int(np.sum(np.bitwise_count(self.words)))

    def any(self) -> bool:
        """True if at least one bit is set."""
        return bool(np.any(self.words))

    def positions(self) -> np.ndarray:
        """Sorted array of set-bit positions."""
        if self.n_bits == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.n_bits]).astype(np.int64)

    def to_bool_array(self) -> np.ndarray:
        """Boolean numpy array of length n_bits."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return bits[: self.n_bits].astype(bool)

    def test_positions(self, positions: np.ndarray) -> np.ndarray:
        """Boolean membership of each position, straight off the packed
        words (gather the covering word, shift, mask) — no full-bitmap
        unpack and no per-tuple loop.  This is the routing kernel of the
        shared index join's "Filter tuples" step."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=bool)
        if int(positions.min()) < 0 or int(positions.max()) >= self.n_bits:
            raise IndexError("position out of bitmap range")
        words = self.words[positions // WORD_BITS]
        shifts = (positions % WORD_BITS).astype(np.uint64)
        return ((words >> shifts) & np.uint64(1)).astype(bool)

    def slice_bool(self, start: int, stop: int) -> np.ndarray:
        """Boolean array for positions ``start .. stop-1``, unpacking only
        the covering words (a page-aligned slice touches ~capacity/64
        words, not the whole bitmap)."""
        if not 0 <= start <= stop <= self.n_bits:
            raise IndexError(
                f"slice [{start}, {stop}) out of range 0..{self.n_bits}"
            )
        if start == stop:
            return np.empty(0, dtype=bool)
        first_word = start // WORD_BITS
        last_word = (stop + WORD_BITS - 1) // WORD_BITS
        bits = np.unpackbits(
            self.words[first_word:last_word].view(np.uint8),
            bitorder="little",
        )
        offset = start - first_word * WORD_BITS
        return bits[offset : offset + (stop - start)].astype(bool)

    def iter_positions(self) -> Iterator[int]:
        """Iterate set positions in ascending order."""
        return iter(self.positions().tolist())

    def pages_touched(self, rows_per_page: int) -> int:
        """Distinct pages containing at least one set bit — the random-probe
        I/O a bitmap-driven fetch of this selection would incur."""
        if rows_per_page <= 0:
            raise ValueError("rows_per_page must be positive")
        pos = self.positions()
        if pos.size == 0:
            return 0
        return int(np.unique(pos // rows_per_page).size)

    def copy(self) -> "Bitmap":
        """An independent copy."""
        return Bitmap(self.n_bits, self.words.copy())

    def _mask_tail(self) -> None:
        """Clear the padding bits beyond ``n_bits`` in the last word."""
        tail = self.n_bits % WORD_BITS
        if self.words.size and tail:
            keep = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            self.words[-1] &= keep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitmap({self.count()}/{self.n_bits} bits set)"


def or_all(bitmaps: Sequence[Bitmap], n_bits: int | None = None) -> Bitmap:
    """OR a sequence of bitmaps (an empty sequence needs ``n_bits``)."""
    if not bitmaps:
        if n_bits is None:
            raise ValueError("or_all of no bitmaps requires n_bits")
        return Bitmap.zeros(n_bits)
    out = bitmaps[0].copy()
    for bm in bitmaps[1:]:
        out._check_compatible(bm)
        out.words |= bm.words
    return out


def and_all(bitmaps: Sequence[Bitmap], n_bits: int | None = None) -> Bitmap:
    """AND a sequence of bitmaps (an empty sequence yields all-ones)."""
    if not bitmaps:
        if n_bits is None:
            raise ValueError("and_all of no bitmaps requires n_bits")
        return Bitmap.ones(n_bits)
    out = bitmaps[0].copy()
    for bm in bitmaps[1:]:
        out._check_compatible(bm)
        out.words &= bm.words
    return out
