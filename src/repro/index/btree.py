"""Position-based B-tree join index.

Section 3.3 of the paper allows star-join indexes to be "either position
based B-tree or bitmap indices".  This variant stores, per member of the
indexed level, a sorted array of matching row positions (a RID list), as the
leaf payload of a B-tree keyed on member id.

``lookup`` converts the retrieved RID lists into a
:class:`~repro.index.bitmap.Bitmap`, so downstream operators (including the
shared ones) treat both index kinds uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..storage.iostats import IOStats
from ..storage.table import HeapTable
from .bitmap import Bitmap
from .bitmap_index import INDEX_PAGE_BYTES, JoinIndex

#: Accounted bytes per stored row position (a 4-byte RID, as in the paper's
#: 4-byte attribute encoding).
BYTES_PER_RID = 4


class PositionListJoinIndex(JoinIndex):
    """B-tree join index whose leaves hold sorted row-position lists."""

    def __init__(
        self,
        table_name: str,
        dim_index: int,
        level: int,
        n_rows: int,
        rid_lists: Dict[int, np.ndarray],
    ):
        super().__init__(table_name, dim_index, level, n_rows)
        self._rid_lists = rid_lists

    @classmethod
    def build(
        cls,
        table: HeapTable,
        table_name: str,
        dim_index: int,
        level: int,
        column_index: int,
        key_to_member: np.ndarray,
        n_members: int,
    ) -> "PositionListJoinIndex":
        """Build from an unaccounted scan of ``table`` (same signature as
        :meth:`BitmapJoinIndex.build`)."""
        keys = np.fromiter(
            (row[column_index] for row in table.all_rows()),
            dtype=np.int64,
            count=table.n_rows,
        )
        members = key_to_member[keys] if keys.size else keys
        rid_lists: Dict[int, np.ndarray] = {}
        order = np.argsort(members, kind="stable")
        sorted_members = members[order]
        boundaries = np.searchsorted(
            sorted_members, np.arange(n_members + 1), side="left"
        )
        for member in range(n_members):
            lo, hi = boundaries[member], boundaries[member + 1]
            if hi > lo:
                rid_lists[member] = np.sort(order[lo:hi]).astype(np.int64)
        return cls(table_name, dim_index, level, table.n_rows, rid_lists)

    @property
    def n_members(self) -> int:
        """Number of members at the given level."""
        return len(self._rid_lists)

    @property
    def n_pages(self) -> int:
        """Accounted size in pages."""
        total_rids = sum(r.size for r in self._rid_lists.values())
        payload = total_rids * BYTES_PER_RID
        return max(1, (payload + INDEX_PAGE_BYTES - 1) // INDEX_PAGE_BYTES)

    def _leaf_pages(self, n_rids: int) -> int:
        return max(1, (n_rids * BYTES_PER_RID + INDEX_PAGE_BYTES - 1) // INDEX_PAGE_BYTES)

    def pages_per_lookup(self, n_members: int) -> int:
        # One descent + average leaf span per member.
        """Accounted pages read to retrieve the given number of member payloads."""
        if not self._rid_lists:
            return n_members
        avg = sum(r.size for r in self._rid_lists.values()) / len(self._rid_lists)
        return n_members * (1 + self._leaf_pages(int(avg)))

    def positions_for(self, member_id: int) -> np.ndarray:
        """The raw RID list for one member (empty if absent)."""
        return self._rid_lists.get(member_id, np.empty(0, dtype=np.int64)).copy()

    def lookup(
        self, member_ids: Iterable[int], stats: IOStats, *, faults=None
    ) -> Bitmap:
        """Bitmap of rows whose key rolls into the given members (charges the clock)."""
        members = list(member_ids)
        self._check_faults(faults, len(members))
        stats.charge_index_lookup(len(members))
        all_rids: list[np.ndarray] = []
        for member in members:
            rids = self._rid_lists.get(member)
            if rids is None:
                stats.charge_rand_read(1)  # descent finds no leaf run
                continue
            stats.charge_rand_read(1)  # descent to the first leaf
            stats.charge_seq_read(self._leaf_pages(rids.size) - 1)
            all_rids.append(rids)
        if not all_rids:
            return Bitmap.zeros(self.n_rows)
        merged = np.concatenate(all_rids)
        result = Bitmap.from_positions(self.n_rows, merged)
        stats.charge_bitmap_words(result.n_words)  # RID→bitmap conversion
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PositionListJoinIndex({self.table_name}.dim{self.dim_index}"
            f"@L{self.level}, {self.n_members} members, {self.n_pages}p)"
        )
