"""Bitmap algebra and star-join indexes (bitmap and position-list payloads)."""

from .bitmap import WORD_BITS, Bitmap, and_all, or_all
from .bitmap_index import INDEX_PAGE_BYTES, BitmapJoinIndex, JoinIndex
from .btree import BYTES_PER_RID, PositionListJoinIndex

__all__ = [
    "BYTES_PER_RID",
    "Bitmap",
    "BitmapJoinIndex",
    "INDEX_PAGE_BYTES",
    "JoinIndex",
    "PositionListJoinIndex",
    "WORD_BITS",
    "and_all",
    "or_all",
]
