"""Join indexes mapping dimension members to fact-table row positions.

The paper assumes "bitmap join indices mapping Adim's A' attribute to tuples
of F" — i.e. the index key is a *hierarchy level* of a dimension (possibly
coarser than the level stored in the fact table), and the payload identifies
matching fact rows.  Two payload representations are provided:

* :class:`BitmapJoinIndex` — one bitmap per member (Section 3.2's plans);
* :class:`PositionListJoinIndex` (see :mod:`repro.index.btree`) — the
  "position based B-tree" alternative the paper mentions in Section 3.3.

Both return a :class:`~repro.index.bitmap.Bitmap` from ``lookup`` so the
star-join operators are agnostic to the payload encoding.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence

import numpy as np

from ..storage.iostats import IOStats
from ..storage.table import HeapTable
from .bitmap import Bitmap, or_all

#: Accounted bytes per page when sizing index payloads (mirrors data pages).
INDEX_PAGE_BYTES = 8192


class JoinIndex(ABC):
    """A join index on one dimension attribute, at one hierarchy level."""

    def __init__(self, table_name: str, dim_index: int, level: int, n_rows: int):
        self.table_name = table_name
        self.dim_index = dim_index
        self.level = level
        self.n_rows = n_rows

    @abstractmethod
    def lookup(
        self, member_ids: Iterable[int], stats: IOStats, *, faults=None
    ) -> Bitmap:
        """Return the bitmap of rows whose dimension value (rolled up to this
        index's level) is one of ``member_ids``, charging index I/O + CPU.
        An armed ``faults`` plan is checked (site ``index.lookup``) before
        any cost is charged."""

    def _check_faults(self, faults, n_members: int) -> None:
        if faults is not None:
            faults.check(
                "index.lookup",
                table=self.table_name,
                dim_index=self.dim_index,
                level=self.level,
                n_members=n_members,
            )

    @property
    @abstractmethod
    def n_pages(self) -> int:
        """Accounted on-disk size of the whole index, in pages."""

    @abstractmethod
    def pages_per_lookup(self, n_members: int) -> int:
        """Accounted pages read to retrieve ``n_members`` payloads."""


class BitmapJoinIndex(JoinIndex):
    """One bitmap per member of the indexed level."""

    def __init__(
        self,
        table_name: str,
        dim_index: int,
        level: int,
        n_rows: int,
        bitmaps: Dict[int, Bitmap],
    ):
        super().__init__(table_name, dim_index, level, n_rows)
        self._bitmaps = bitmaps
        payload_bytes = (n_rows + 7) // 8
        self._pages_per_bitmap = max(
            1, (payload_bytes + INDEX_PAGE_BYTES - 1) // INDEX_PAGE_BYTES
        )

    @classmethod
    def build(
        cls,
        table: HeapTable,
        table_name: str,
        dim_index: int,
        level: int,
        column_index: int,
        key_to_member: np.ndarray,
        n_members: int,
    ) -> "BitmapJoinIndex":
        """Build from an unaccounted scan of ``table``.

        ``key_to_member`` maps the dimension key *as stored in the table's
        column* to the member id at the indexed ``level``.
        """
        keys = np.fromiter(
            (row[column_index] for row in table.all_rows()),
            dtype=np.int64,
            count=table.n_rows,
        )
        members = key_to_member[keys] if keys.size else keys
        bitmaps: Dict[int, Bitmap] = {}
        for member in range(n_members):
            mask = members == member
            if np.any(mask):
                bitmaps[member] = Bitmap.from_bool_array(mask)
        return cls(table_name, dim_index, level, table.n_rows, bitmaps)

    @property
    def n_members(self) -> int:
        """Number of members at the given level."""
        return len(self._bitmaps)

    @property
    def n_pages(self) -> int:
        """Accounted size in pages."""
        return self._pages_per_bitmap * max(1, len(self._bitmaps))

    def pages_per_lookup(self, n_members: int) -> int:
        """Accounted pages read to retrieve the given number of member payloads."""
        return self._pages_per_bitmap * n_members

    def bitmap_for(self, member_id: int) -> Bitmap:
        """The raw bitmap of one member (empty bitmap if member absent)."""
        bm = self._bitmaps.get(member_id)
        return bm.copy() if bm is not None else Bitmap.zeros(self.n_rows)

    def lookup(
        self, member_ids: Iterable[int], stats: IOStats, *, faults=None
    ) -> Bitmap:
        """Bitmap of rows whose key rolls into the given members (charges the clock)."""
        members = list(member_ids)
        self._check_faults(faults, len(members))
        stats.charge_index_lookup(len(members))
        # Retrieving each member's bitmap streams its pages.
        stats.charge_seq_read(self.pages_per_lookup(len(members)))
        found = [self._bitmaps[m] for m in members if m in self._bitmaps]
        result = or_all(found, n_bits=self.n_rows)
        if len(found) > 1:
            stats.charge_bitmap_words(result.n_words * (len(found) - 1))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitmapJoinIndex({self.table_name}.dim{self.dim_index}"
            f"@L{self.level}, {self.n_members} members, {self.n_pages}p)"
        )
