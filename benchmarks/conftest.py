"""Benchmark fixtures.

* ``REPRO_BENCH_SCALE`` — dataset scale (fraction of the paper's 2,000,000
  rows; default 0.01 = 20,000).
* ``REPRO_BENCH_EXPORT`` — a directory; when set, harness row sets are also
  written there as CSV (via the ``export`` fixture) for plotting.

All benchmarks print paper-style rows through the ``report`` fixture; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them inline (they
are also echoed at the end without ``-s``).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.export import write_csv
from repro.workload.paper_queries import paper_queries
from repro.workload.paper_schema import build_paper_database


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))


@pytest.fixture(scope="session")
def export():
    """Write rows to ``$REPRO_BENCH_EXPORT/<name>.csv`` (no-op when the
    variable is unset)."""
    directory = os.environ.get("REPRO_BENCH_EXPORT")

    def _export(name: str, rows) -> None:
        if not directory or not rows:
            return
        write_csv(rows, os.path.join(directory, f"{name}.csv"),
                  extra={"scale": bench_scale()})

    return _export


@pytest.fixture(scope="session")
def db():
    return build_paper_database(scale=bench_scale())


@pytest.fixture(scope="session")
def qs(db):
    return paper_queries(db.schema)


class _Reporter:
    def __init__(self):
        self.sections = []

    def __call__(self, text: str) -> None:
        self.sections.append(text)
        print("\n" + text)


@pytest.fixture(scope="session")
def report():
    reporter = _Reporter()
    yield reporter
    if reporter.sections:
        print("\n" + "=" * 72)
        print("PAPER REPRODUCTION OUTPUT (all sections)")
        print("=" * 72)
        for section in reporter.sections:
            print()
            print(section)
