"""Ablation: do the paper's conclusions survive scale and data skew?

The paper evaluates one dataset size (2M rows) with, presumably, uniform
data.  We rerun the Test 4 comparison across base-table scales and under
Zipf-skewed dimension keys, checking that GG's advantage over TPLO is not an
artifact of one configuration.
"""

from repro.bench.harness import run_algorithm_comparison
from repro.bench.reporting import format_table
from repro.workload.paper_queries import paper_queries
from repro.workload.paper_schema import PaperConfig, build_paper_database

SCALES = (0.005, 0.01, 0.02)


def test_gg_advantage_across_scales(report, benchmark):
    def run():
        rows = []
        for scale in SCALES:
            db = build_paper_database(scale=scale)
            qs = paper_queries(db.schema)
            comparison = run_algorithm_comparison(
                db, [qs[i] for i in (1, 2, 3)], algorithms=("tplo", "gg")
            )
            by_algorithm = {r.algorithm: r for r in comparison}
            rows.append(
                (
                    scale,
                    int(2_000_000 * scale),
                    by_algorithm["tplo"].sim_ms,
                    by_algorithm["gg"].sim_ms,
                    by_algorithm["tplo"].sim_ms / by_algorithm["gg"].sim_ms,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["scale", "base rows", "tplo sim-ms", "gg sim-ms", "tplo/gg"],
            rows,
            title="Ablation — Test 4 GG advantage across base-table scales",
        )
    )
    for _scale, _rows, tplo_ms, gg_ms, ratio in rows:
        assert gg_ms < tplo_ms
        assert ratio > 1.3
    # The advantage does not collapse as data grows.
    assert rows[-1][4] > 1.3


def test_gg_advantage_under_skew(report, benchmark):
    def run():
        rows = []
        for theta in (0.0, 0.8):
            config = PaperConfig(scale=0.01, skew=(theta, theta, theta, theta))
            db = build_paper_database(config=config)
            qs = paper_queries(db.schema)
            comparison = run_algorithm_comparison(
                db, [qs[i] for i in (1, 2, 3)], algorithms=("tplo", "gg")
            )
            by_algorithm = {r.algorithm: r for r in comparison}
            rows.append(
                (
                    theta,
                    by_algorithm["tplo"].sim_ms,
                    by_algorithm["gg"].sim_ms,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["zipf theta", "tplo sim-ms", "gg sim-ms"],
            rows,
            title="Ablation — Test 4 under Zipf-skewed dimension keys",
        )
    )
    for _theta, tplo_ms, gg_ms in rows:
        assert gg_ms < tplo_ms
