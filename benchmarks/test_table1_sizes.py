"""Table 1: sizes of the materialized group-bys.

The paper's Table 1 lists the row counts of the base table and the
materialized group-bys on its 2M-row dataset.  We regenerate the same table
at the configured scale; the property that must hold is the *ordering* —
the base is largest, one-level-coarser group-bys shrink, two-level-coarser
group-bys shrink further.
"""

from repro.bench.harness import table1_rows
from repro.bench.reporting import format_table
from repro.workload.paper_schema import PAPER_BASE_ROWS

from conftest import bench_scale

#: The paper's Table 1 rows (its notation; entries 3-6 partially illegible
#: in the scan — see DESIGN.md for the reconstruction).
PAPER_TABLE1 = {
    "ABCD": 2_000_000,
    "A'B'C'D": 1_000_000,
    "A'B'C''D": 700_000,
    "A''B'C'D": 700_000,
    "A'B''C'D": 750_000,
    "A''B''C'D": 1_500_000,
}


def test_table1_materialized_sizes(db, report, benchmark):
    rows = benchmark.pedantic(
        lambda: table1_rows(db), rounds=1, iterations=1
    )
    scale = bench_scale()
    display = [
        (
            name,
            n_rows,
            n_pages,
            PAPER_TABLE1.get(name, 0),
            n_rows / (PAPER_BASE_ROWS * scale),
        )
        for name, n_rows, n_pages in rows
    ]
    report(
        format_table(
            ["group-by", "rows (ours)", "pages", "rows (paper @2M)", "ours/base"],
            display,
            title=f"Table 1 — materialized group-by sizes (scale={scale})",
        )
    )
    sizes = {name: n_rows for name, n_rows, _pages in rows}
    # Shape: the base dominates, coarser group-bys are smaller.
    assert sizes["ABCD"] >= sizes["A'B'C'D"] >= sizes["A'B'C''D"]
    assert sizes["A'B'C''D"] >= sizes["A''B''C'D"]
    assert len(sizes) == 6
