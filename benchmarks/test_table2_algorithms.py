"""Tests 4–7 / Table 2: the three optimization algorithms vs. the optimal
global plan.

For each of the paper's four MDX expressions we run TPLO, ETPLG, GG, and the
exhaustive optimal planner (plus the no-sharing naive baseline), execute
every global plan, and verify the paper's qualitative outcomes:

* Test 4 (Q1,Q2,Q3): ETPLG cannot move Q2 into Q1's class (incompatible
  base tables), GG rebases onto a common table — GG ≈ optimal, far below
  TPLO.
* Test 5 (Q2,Q3,Q5): same mechanism; GG folds the selective Q5 into the
  shared hash class.
* Test 6 (Q6,Q7,Q8): all queries very selective — every algorithm lands on
  the same shared index plan; "the different global plans perform about the
  same".
* Test 7 (Q1,Q7,Q9): the merging algorithms match the optimal plan; the
  non-sharing baseline is the worst.
"""

import pytest

from repro.bench.harness import run_algorithm_comparison
from repro.bench.reporting import format_table
from repro.workload.paper_queries import PAPER_TESTS

ALGORITHMS = ("naive", "tplo", "etplg", "gg", "optimal")

#: Paper Table 2 execution times in seconds (garbled cells reconstructed
#: from the prose; shown for shape comparison only).
PAPER_TABLE2_S = {
    "test4": {"tplo": 30.87, "etplg": 30.87, "gg": 19.23, "optimal": 19.26},
    "test5": {"tplo": 17.80, "etplg": 17.80, "gg": 15.34, "optimal": 15.37},
    "test6": {"tplo": None, "etplg": None, "gg": None, "optimal": None},
    "test7": {"tplo": None, "etplg": None, "gg": None, "optimal": None},
}


def run_one(db, qs, report, benchmark, test_name):
    queries = [qs[i] for i in PAPER_TESTS[test_name]]
    rows = benchmark.pedantic(
        lambda: run_algorithm_comparison(db, queries, ALGORITHMS),
        rounds=1,
        iterations=1,
    )
    paper = PAPER_TABLE2_S[test_name]
    report(
        format_table(
            ["algorithm", "est sim-ms", "exec sim-ms", "classes", "plan",
             "paper (s)"],
            [
                (
                    r.algorithm,
                    r.est_ms,
                    r.sim_ms,
                    r.n_classes,
                    r.plan,
                    paper.get(r.algorithm) or "-",
                )
                for r in rows
            ],
            title=f"Table 2 — {test_name} "
            f"(Queries {PAPER_TESTS[test_name]})",
        )
    )
    return {r.algorithm: r for r in rows}


def test_test4(db, qs, report, benchmark):
    rows = run_one(db, qs, report, benchmark, "test4")
    # GG finds the shared base table; TPLO/ETPLG stay split.
    assert rows["gg"].sim_ms < 0.7 * rows["tplo"].sim_ms
    assert rows["gg"].sim_ms == pytest.approx(rows["optimal"].sim_ms, rel=0.1)
    assert rows["gg"].n_classes < rows["tplo"].n_classes
    assert rows["etplg"].sim_ms <= rows["tplo"].sim_ms + 1e-6


def test_test5(db, qs, report, benchmark):
    rows = run_one(db, qs, report, benchmark, "test5")
    assert rows["gg"].sim_ms < 0.7 * rows["tplo"].sim_ms
    assert rows["gg"].sim_ms == pytest.approx(rows["optimal"].sim_ms, rel=0.1)
    # GG consolidates everything onto one shared hash class (the paper's GG
    # switches Q5's index plan to a shared hash plan).
    assert rows["gg"].n_classes == 1
    assert "H" in rows["gg"].plan


def test_test6(db, qs, report, benchmark):
    rows = run_one(db, qs, report, benchmark, "test6")
    sims = [rows[a].sim_ms for a in ("tplo", "etplg", "gg", "optimal")]
    # "The different global plans perform about the same for this situation."
    assert max(sims) < min(sims) * 1.15
    # All algorithms land on index plans over the same base table.
    for algorithm in ("tplo", "etplg", "gg", "optimal"):
        assert "I" in rows[algorithm].plan
        assert "A'B'C'D" in rows[algorithm].plan


def test_test7(db, qs, report, benchmark):
    rows = run_one(db, qs, report, benchmark, "test7")
    # The merging algorithms find the optimal plan.
    assert rows["etplg"].sim_ms == pytest.approx(
        rows["optimal"].sim_ms, rel=0.15
    )
    assert rows["gg"].sim_ms == pytest.approx(rows["optimal"].sim_ms, rel=0.15)
    # The plan that shares nothing pays the most (the paper attributes this
    # role to TPLO; with our materialized-view sizes TPLO finds the same
    # merge, and the naive baseline takes the worst spot — see
    # EXPERIMENTS.md).
    assert rows["naive"].sim_ms == max(r.sim_ms for r in rows.values())
    assert rows["gg"].sim_ms < 0.65 * rows["naive"].sim_ms
