"""Ablation: does the Section 5.1 cost model track simulated execution?

The optimizers choose plans by estimated cost but Table 2 reports executed
time; the reproduction only holds together if estimate and simulation agree
on *ordering*.  We collect (estimate, simulation) pairs over a grid of
(query, base table, method) plans and require a strong rank correlation.
"""

import pytest
from scipy import stats as scipy_stats

from repro.bench.harness import run_forced_class
from repro.bench.reporting import format_table
from repro.core.optimizer import CostModel, JoinMethod


def test_estimate_tracks_simulation(db, qs, report, benchmark):
    model = CostModel(db.schema, db.catalog, db.stats.rates)

    def run():
        pairs = []
        for query_id in (1, 2, 3, 5, 6, 8, 9):
            query = qs[query_id]
            for entry in db.catalog.entries():
                if not query.answerable_from(entry.levels):
                    continue
                for method in (JoinMethod.HASH, JoinMethod.INDEX):
                    try:
                        est = model.class_cost_given(
                            entry, [query], [method]
                        )
                    except ValueError:
                        continue
                    run_ = run_forced_class(db, entry.name, [query], [method])
                    pairs.append(
                        (query.display_name(), entry.name, method.name,
                         est, run_.sim_ms)
                    )
        return pairs

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["query", "table", "method", "estimated ms", "simulated ms"],
            pairs,
            title="Ablation — cost-model estimate vs simulated execution",
        )
    )
    estimates = [p[3] for p in pairs]
    simulated = [p[4] for p in pairs]
    rho, _p = scipy_stats.spearmanr(estimates, simulated)
    report(f"Spearman rank correlation: rho = {rho:.3f} over {len(pairs)} plans")
    assert len(pairs) > 20
    assert rho > 0.8
    # Hash estimates are near-exact (same charge formulas); allow the index
    # estimates their clustering approximation.
    for _q, _t, method, est, sim in pairs:
        if method == "HASH":
            assert est == pytest.approx(sim, rel=0.35)
