"""Ablation: bitmap vs position-list (B-tree) join-index payloads.

Section 3.3 allows star-join indexes to be "either position based B-tree or
bitmap indices".  Both payloads drive the same operators through the Bitmap
interface; this benchmark confirms the answers are identical and compares
their simulated costs on the Test 2 workload.
"""

from repro.bench.harness import run_forced_class
from repro.bench.reporting import format_table
from repro.core.optimizer.plans import JoinMethod
from repro.workload.paper_queries import paper_queries
from repro.workload.paper_schema import PaperConfig, build_paper_database

from conftest import bench_scale


def build(kind: str):
    config = PaperConfig(scale=bench_scale(), indexed_tables=())
    db = build_paper_database(config=config)
    for table in ("ABCD", "A'B'C'D"):
        db.index_all_dimensions(table, dim_names=("A", "B", "C"), kind=kind)
    return db


def test_bitmap_vs_btree_payloads(report, benchmark):
    def run():
        rows = []
        results = {}
        for kind in ("bitmap", "btree"):
            db = build(kind)
            qs = paper_queries(db.schema)
            queries = [qs[i] for i in (5, 6, 7, 8)]
            run_ = run_forced_class(
                db, "A'B'C'D", queries, [JoinMethod.INDEX] * 4
            )
            results[kind] = run_.results
            rows.append((kind, run_.sim_ms, run_.io_ms, run_.cpu_ms))
        return rows, results

    (rows, results) = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["index kind", "sim-ms", "io-ms", "cpu-ms"],
            rows,
            title="Ablation — bitmap vs B-tree (position list) join index, "
            "shared index join of Queries 5-8",
        )
    )
    # Identical answers regardless of payload encoding.
    for bitmap_result, btree_result in zip(results["bitmap"], results["btree"]):
        assert bitmap_result.approx_equals(btree_result)
    # Both are in the same cost ballpark (payload choice is not the story).
    sims = [r[1] for r in rows]
    assert max(sims) < 3 * min(sims)
