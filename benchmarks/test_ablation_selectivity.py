"""Ablation: the hash-vs-index crossover.

The paper's conclusion hinges on this crossover: "If all queries of an MDX
expression are not selective, the optimizer will choose hash-based star join
… if all the queries are very selective, [it chooses] index-based star
join."  We sweep predicate selectivity on A'B'C'D and measure both join
methods, then check that the cost model's choice agrees with the measured
winner at both extremes.
"""

from repro.bench.harness import run_forced_class
from repro.bench.reporting import format_table
from repro.core.optimizer import CostModel, JoinMethod
from repro.schema.query import DimPredicate, GroupBy, GroupByQuery


def sweep_queries(db):
    """Queries selecting k = 1, 2, 4, 6, 9 of A's nine mid-level members,
    plus the usual D slicer."""
    queries = []
    for k in (1, 2, 4, 6, 9):
        queries.append(
            (
                k,
                GroupByQuery(
                    groupby=GroupBy((1, 2, 2, 1)),
                    predicates=(
                        DimPredicate(0, 1, frozenset(range(k))),
                        DimPredicate(3, 1, frozenset({0})),
                    ),
                    label=f"sel-{k}/9",
                ),
            )
        )
    return queries


def test_selectivity_crossover(db, report, benchmark):
    source = "A'B'C'D"
    model = CostModel(db.schema, db.catalog, db.stats.rates)
    entry = db.catalog.get(source)

    def run():
        rows = []
        for k, query in sweep_queries(db):
            hash_run = run_forced_class(db, source, [query], [JoinMethod.HASH])
            index_run = run_forced_class(
                db, source, [query], [JoinMethod.INDEX]
            )
            chosen, _cost = model.standalone(entry, query)
            rows.append((k, hash_run.sim_ms, index_run.sim_ms, chosen))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["members of A'", "hash sim-ms", "index sim-ms", "model picks"],
            [(k, h, i, m.name) for k, h, i, m in rows],
            title=f"Ablation — hash/index crossover on {source}",
        )
    )
    by_k = {k: (h, i, m) for k, h, i, m in rows}
    # Most selective: index wins and the model knows it.
    h1, i1, m1 = by_k[1]
    assert i1 < h1
    assert m1 is JoinMethod.INDEX
    # Least selective: hash wins and the model knows it.
    h9, i9, m9 = by_k[9]
    assert h9 < i9
    assert m9 is JoinMethod.HASH
    # Hash cost is flat across the sweep (scan-bound); index cost grows.
    hashes = [h for _k, h, _i, _m in rows]
    indexes = [i for _k, _h, i, _m in rows]
    assert max(hashes) < min(hashes) * 1.5
    assert indexes[-1] > indexes[0] * 2
