"""Test 2 / Figure 11: the shared index join operator.

Queries 5–8, each forced to a bitmap-index star join on A'B'C'D (the paper's
configuration).  The shared operator ORs the per-query result bitmaps and
probes the base table once; tuples are routed to each query's aggregation by
re-testing its own bitmap.

Shapes to reproduce:
* shared is never worse than separate, and wins once probe sets overlap;
* "more than 80% of the shared index star join time is spent on probing the
  base table" — probe (random) I/O dominates;
* probing grows sublinearly with the number of queries (the paper's
  1.651 s → 1.969 s from 2 to 4 queries).

Queries are added in overlap order (5, 8, 6, 7): Q5 and Q8 select the same
A' member, so their probe pages coincide in the A-clustered table.
"""

import pytest

from repro.bench.harness import run_test2_shared_index
from repro.bench.reporting import format_table


def test_fig11_shared_index(db, qs, report, benchmark, export):
    queries = [qs[i] for i in (5, 8, 6, 7)]
    rows = benchmark.pedantic(
        lambda: run_test2_shared_index(db, queries), rounds=1, iterations=1
    )
    export("fig11", rows)
    report(
        format_table(
            ["queries", "separate sim-ms", "shared sim-ms",
             "separate probe-io", "shared probe-io", "probe share"],
            [
                (
                    r.n_queries,
                    r.separate_ms,
                    r.shared_ms,
                    r.separate_io_ms,
                    r.shared_io_ms,
                    f"{r.shared_io_ms / r.shared_ms:.0%}",
                )
                for r in rows
            ],
            title="Figure 11 — shared index star join (Queries 5,8,6,7 on "
            "A'B'C'D)\nPaper: probing dominates (>80%) and grows "
            "sublinearly when shared.",
        )
    )
    for r in rows:
        assert r.shared_ms <= r.separate_ms + 1e-6
    # Overlapping probe sets (Q5, Q8) make sharing win outright.
    assert rows[1].shared_ms < rows[1].separate_ms
    # Probing dominates the shared operator's time, as the paper observes.
    assert rows[-1].shared_io_ms / rows[-1].shared_ms > 0.8
    # Shared probe I/O grows sublinearly vs. the separate sum.
    assert rows[-1].shared_io_ms < rows[-1].separate_io_ms
