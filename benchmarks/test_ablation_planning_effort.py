"""Ablation: the planning-effort trade-off (the paper's Section 8).

"In terms of the number of global plans searched, GG dominates ETPLG and
ETPLG dominates TPLO.  However, this comes at a price — the run time of GG
is bigger than that of ETPLG, and ETPLG is slower than TPLO."

We measure both sides at once: class costings performed (search effort) and
the executed quality of the resulting plan, for each algorithm over the four
paper test workloads.
"""

import pytest

from repro.bench.reporting import format_table
from repro.workload.paper_queries import PAPER_TESTS

ALGORITHMS = ("tplo", "etplg", "bgg", "gg", "dp", "optimal")


def test_planning_effort_vs_plan_quality(db, qs, report, benchmark):
    def run():
        rows = []
        for test_name, ids in PAPER_TESTS.items():
            queries = [qs[i] for i in ids]
            for algorithm in ALGORITHMS:
                plan = db.optimize(queries, algorithm)
                exec_report = db.execute(plan)
                rows.append(
                    (
                        test_name,
                        algorithm,
                        plan.search_stats["plan_costings"],
                        plan.search_stats["planning_s"] * 1000,
                        exec_report.sim_ms,
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["workload", "algorithm", "class costings", "planning wall-ms",
             "executed sim-ms"],
            rows,
            title="Ablation — planning effort vs plan quality "
            "(paper Section 8 trade-off)",
        )
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for test_name in PAPER_TESTS:
        tplo = by_key[(test_name, "tplo")]
        etplg = by_key[(test_name, "etplg")]
        bgg = by_key[(test_name, "bgg")]
        gg = by_key[(test_name, "gg")]
        dp = by_key[(test_name, "dp")]
        optimal = by_key[(test_name, "optimal")]
        # Search effort: GG >= BGG >= ETPLG >= TPLO; exhaustive dwarfs all.
        # (The set-partition DP's 2^n·t costings only undercut exhaustive's
        # t^n beyond ~3 queries — its scaling is pinned by
        # tests/test_dp_optimizer.py on an 8-query batch.)
        assert gg[2] >= bgg[2] >= etplg[2] >= tplo[2]
        assert optimal[2] > gg[2]
        # Quality (executed sim time): GG never worse than ETPLG by more
        # than noise; both never worse than TPLO by more than noise — and
        # the future-work BGG matches GG's quality at lower search effort,
        # while DP matches the exhaustive optimum exactly.
        assert gg[4] <= etplg[4] * 1.05
        assert etplg[4] <= tplo[4] * 1.05
        assert bgg[4] <= gg[4] * 1.05
        assert dp[4] == pytest.approx(optimal[4], rel=0.01)
