"""Test 1 / Figure 10: the shared scan hash-based star join operator.

Queries 1–4, each forced to a hash star join on the base table ABCD (as the
paper forces them).  Dotted bars = the queries run separately (cold each);
solid bars = one shared-scan operator.  Shape to reproduce: separate grows
linearly with the number of queries, shared grows only by per-query CPU, so
the gap widens — while the shared scan's I/O stays constant.
"""

import pytest

from repro.bench.harness import run_test1_shared_scan
from repro.bench.reporting import format_table

#: Paper's reading of Figure 10 (seconds, eyeballed from the bars): separate
#: roughly doubles from 2 to 4 queries; shared grows by a small CPU delta.
PAPER_SHAPE_NOTE = (
    "Paper: separate grows ~linearly; shared nearly flat "
    "(CPU-only growth per added query)."
)


def test_fig10_shared_scan(db, qs, report, benchmark, export):
    queries = [qs[i] for i in (1, 2, 3, 4)]
    rows = benchmark.pedantic(
        lambda: run_test1_shared_scan(db, queries), rounds=1, iterations=1
    )
    export("fig10", rows)
    report(
        format_table(
            ["queries", "separate sim-ms", "shared sim-ms", "shared io-ms",
             "speedup"],
            [
                (r.n_queries, r.separate_ms, r.shared_ms, r.shared_io_ms,
                 r.speedup)
                for r in rows
            ],
            title="Figure 10 — shared scan hash star join (Queries 1-4 on "
            "ABCD)\n" + PAPER_SHAPE_NOTE,
        )
    )
    # Separate execution is linear in k (each run scans ABCD again).
    assert rows[3].separate_ms == pytest.approx(4 * rows[0].separate_ms, rel=0.05)
    # The shared operator's I/O does not grow with k...
    assert rows[3].shared_io_ms == pytest.approx(rows[0].shared_io_ms, rel=0.02)
    # ...only its CPU does, so the gap widens monotonically.
    gaps = [r.separate_ms - r.shared_ms for r in rows]
    assert gaps == sorted(gaps)
    assert rows[3].speedup > 2.5
