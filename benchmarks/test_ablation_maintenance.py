"""Ablation: incremental view maintenance vs rebuilding from scratch.

The paper's Section 1 motivates precomputation with work on "effectively
creating and maintaining materialized group-bys"; our engine maintains
views and indexes incrementally under appends.  This benchmark measures the
wall-clock cost of maintaining the paper database through a stream of
append batches against rebuilding every view per batch, and verifies the
maintained state answers queries identically.
"""

import time

from repro.bench.reporting import format_table
from repro.engine.reference import evaluate_reference
from repro.workload.generator import generate_fact_rows
from repro.workload.paper_queries import paper_queries
from repro.workload.paper_schema import PAPER_MATERIALIZED, PaperConfig, build_paper_database

from conftest import bench_scale

BATCHES = 4
BATCH_ROWS = 500


def fresh():
    return build_paper_database(
        config=PaperConfig(scale=bench_scale() / 2, indexed_tables=())
    )


def test_incremental_vs_rebuild(report, benchmark):
    def run():
        incremental_db = fresh()
        rebuild_db = fresh()
        incremental_s = 0.0
        rebuild_s = 0.0
        for batch in range(BATCHES):
            rows = generate_fact_rows(
                incremental_db.schema, BATCH_ROWS, seed=9000 + batch
            )
            started = time.perf_counter()
            incremental_db.append_rows(rows)
            incremental_s += time.perf_counter() - started

            started = time.perf_counter()
            rebuild_db.catalog.get("ABCD").table.extend(rows)
            for name in list(rebuild_db.catalog.names()):
                if name == "ABCD":
                    continue
                rebuild_db.catalog.drop(name)
            for groupby in PAPER_MATERIALIZED:
                rebuild_db.materialize(groupby)
            rebuild_s += time.perf_counter() - started
        return incremental_db, rebuild_db, incremental_s, rebuild_s

    incremental_db, rebuild_db, incremental_s, rebuild_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        format_table(
            ["strategy", "wall-s for 4x500-row batches"],
            [
                ("incremental maintenance", incremental_s),
                ("rebuild all views per batch", rebuild_s),
            ],
            title="Ablation — view maintenance under appends",
        )
    )
    # Both strategies end in the same logical state: every view answers the
    # paper's queries identically to a reference over the grown base.
    qs = paper_queries(incremental_db.schema)
    base = incremental_db.catalog.get("ABCD")
    for query_id in (1, 3):
        query = qs[query_id]
        expected = evaluate_reference(
            incremental_db.schema,
            base.table.all_rows(),
            query,
            base.levels,
        )
        got = incremental_db.run_queries([query], "gg").result_for(query)
        assert got.approx_equals(expected)
    # And incremental is cheaper than wholesale rebuilding (wall-clock is
    # noisy at this scale; allow a small tolerance).
    assert incremental_s < rebuild_s * 1.1
