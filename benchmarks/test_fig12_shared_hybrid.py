"""Test 3 / Figure 12: shared scan for hash- and index-based star joins.

Query 3 runs as a hash join; Queries 5, 6, 7 run as bitmap-index joins, all
on A'B'C'D (the paper's configuration).  The hybrid operator converts each
index plan's random probe phase into a bitmap filter over the shared
sequential scan.

Shape to reproduce: "adding a new index-based query to the operator only
increases the total execution time by a small amount", because the new
query's base-table I/O is absorbed by the scan and only a small CPU cost
(bitmap tests + processing the few matching tuples) remains.
"""

import pytest

from repro.bench.harness import run_test3_hybrid
from repro.bench.reporting import format_table


def test_fig12_shared_hybrid(db, qs, report, benchmark, export):
    hash_queries = [qs[3]]
    index_queries = [qs[5], qs[6], qs[7]]
    rows = benchmark.pedantic(
        lambda: run_test3_hybrid(db, hash_queries, index_queries),
        rounds=1,
        iterations=1,
    )
    export("fig12", rows)
    report(
        format_table(
            ["queries", "separate sim-ms", "shared sim-ms",
             "shared increment", "separate increment"],
            [
                (
                    r.n_queries,
                    r.separate_ms,
                    r.shared_ms,
                    r.shared_ms - rows[i - 1].shared_ms if i else 0.0,
                    r.separate_ms - rows[i - 1].separate_ms if i else 0.0,
                )
                for i, r in enumerate(rows)
            ],
            title="Figure 12 — shared scan for hash + index joins "
            "(Q3 hash + Q5,6,7 index on A'B'C'D)\nPaper: each added index "
            "query increases total time only slightly.",
        )
    )
    # Each added index query costs far less inside the shared operator than
    # run separately.
    for i in range(1, len(rows)):
        shared_inc = rows[i].shared_ms - rows[i - 1].shared_ms
        separate_inc = rows[i].separate_ms - rows[i - 1].separate_ms
        assert shared_inc < separate_inc
        # "Only ... a small amount": under a quarter of the standalone cost.
        assert shared_inc < 0.35 * separate_inc
    assert rows[-1].shared_ms < rows[-1].separate_ms
