"""Ablation: how sensitive are the greedy algorithms to query order?

ETPLG and GG process queries "sorted by GroupbyLevel" (finest first).  We
rerun GG under the paper's order, the reverse order, and qid (arrival)
order, comparing the estimated cost of the resulting global plans.
"""

from repro.bench.reporting import format_table
from repro.core.optimizer.gg import GGOptimizer
from repro.schema.query import query_sort_key
from repro.workload.paper_queries import PAPER_TESTS

ORDERS = {
    "paper (finest first)": query_sort_key,
    "reversed (coarsest first)": lambda q: tuple(
        -component if isinstance(component, int) else component
        for component in (q.groupby.level_sum(), q.qid)
    ),
    "arrival (qid)": lambda q: q.qid,
}


def test_gg_order_sensitivity(db, qs, report, benchmark):
    def run():
        rows = []
        for test_name, ids in PAPER_TESTS.items():
            queries = [qs[i] for i in ids]
            costs = {}
            for order_name, sort_key in ORDERS.items():
                plan = GGOptimizer(db, sort_key=sort_key).optimize(queries)
                costs[order_name] = plan.est_cost_ms
            rows.append((test_name, *costs.values()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["workload", *ORDERS.keys()],
            rows,
            title="Ablation — GG plan cost (est sim-ms) under different "
            "greedy orders",
        )
    )
    for row in rows:
        paper_cost = row[1]
        best = min(row[1:])
        # The paper's order is never far off the best of the three.
        assert paper_cost <= best * 1.5
