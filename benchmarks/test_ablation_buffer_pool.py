"""Ablation: buffer-pool size and the value of operator-level sharing.

The paper runs everything cold (flushed pools), so the shared operators are
the *only* source of reuse.  A natural question: would a big buffer pool
make operator-level sharing redundant?  We execute Queries 1–4 back-to-back
*warm* (no flushes) under growing pool sizes and compare with the shared
operator: even a pool large enough to cache the whole base table only
removes the I/O, while the shared scan also shares the dimension hash
tables — and needs no cache residency at all.
"""

from repro.bench.harness import run_forced_class
from repro.bench.reporting import format_table
from repro.core.optimizer.plans import JoinMethod
from repro.workload.paper_queries import paper_queries
from repro.workload.paper_schema import PaperConfig, build_paper_database

from conftest import bench_scale

POOL_PAGES = (64, 512, 4096)


def test_pool_size_vs_shared_operator(report, benchmark):
    def run():
        rows = []
        for pool_pages in POOL_PAGES:
            config = PaperConfig(scale=bench_scale(), buffer_pages=pool_pages)
            db = build_paper_database(config=config)
            qs = paper_queries(db.schema)
            queries = [qs[i] for i in (1, 2, 3, 4)]
            methods = [JoinMethod.HASH] * 4
            # Warm separate runs: flush once, then run all four without
            # flushing so the pool can help.
            db.flush()
            warm_total = 0.0
            for query, method in zip(queries, methods):
                warm_total += run_forced_class(
                    db, "ABCD", [query], [method], cold=False
                ).sim_ms
            shared = run_forced_class(db, "ABCD", queries, methods)
            base_pages = db.catalog.get("ABCD").n_pages
            rows.append(
                (
                    pool_pages,
                    "yes" if pool_pages >= base_pages else "no",
                    warm_total,
                    shared.sim_ms,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["pool pages", "table fits", "warm separate sim-ms",
             "shared operator sim-ms"],
            rows,
            title="Ablation — buffer-pool size vs the shared scan operator "
            "(Queries 1-4, hash joins on ABCD)",
        )
    )
    # With a small pool (LRU scan thrashing) warm separate ~= cold separate;
    # the shared operator wins big.
    small = rows[0]
    assert small[3] < 0.5 * small[2]
    # Even with the whole table cached, the shared operator is never worse:
    # it still builds each dimension structure once.
    big = rows[-1]
    assert big[3] <= big[2] * 1.02
