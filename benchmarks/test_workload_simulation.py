"""Randomized workload simulation — the paper's "true test".

Section 8: "The true test of any optimization scheme is how well it works
on 'real' workloads."  Lacking OLE-DB-for-OLAP traces (as the authors did),
we simulate client sessions: batches of randomly generated MDX expressions
(via :mod:`repro.workload.mdx_generator`) are optimized batch-wise by each
algorithm, and the distribution of speedups over one-at-a-time execution is
reported.

Shape to verify: GG helps on average and never hurts materially; the
benefit varies with how related the batched expressions happen to be —
exactly the caveat the paper raises about workload dependence.
"""

import random
import statistics

from repro.bench.reporting import format_table
from repro.engine.session import QuerySession
from repro.workload.mdx_generator import generate_mdx

N_SESSIONS = 12
EXPRESSIONS_PER_SESSION = 3

ALGORITHMS = ("naive", "tplo", "gg")


def test_random_mdx_sessions(db, report, benchmark):
    def run():
        per_algorithm = {name: [] for name in ALGORITHMS}
        dedup_total = 0
        for seed in range(N_SESSIONS):
            rng = random.Random(1000 + seed)
            texts = [
                generate_mdx(db.schema, rng, max_members_per_axis=2).text
                for _ in range(EXPRESSIONS_PER_SESSION)
            ]
            sims = {}
            for algorithm in ALGORITHMS:
                session = QuerySession(db, algorithm=algorithm)
                for i, text in enumerate(texts):
                    session.add_mdx(text, f"s{seed}e{i}")
                outcome = session.run()
                sims[algorithm] = outcome.execution.sim_ms
                if algorithm == "gg":
                    dedup_total += outcome.n_duplicates_eliminated
            for algorithm in ALGORITHMS:
                per_algorithm[algorithm].append(sims[algorithm])
        return per_algorithm, dedup_total

    (per_algorithm, dedup_total) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = []
    for algorithm in ALGORITHMS:
        sims = per_algorithm[algorithm]
        rows.append(
            (
                algorithm,
                statistics.mean(sims),
                min(sims),
                max(sims),
            )
        )
    speedups = [
        naive / gg
        for naive, gg in zip(per_algorithm["naive"], per_algorithm["gg"])
    ]
    report(
        format_table(
            ["algorithm", "mean sim-ms", "min", "max"],
            rows,
            title=f"Workload simulation — {N_SESSIONS} random sessions × "
            f"{EXPRESSIONS_PER_SESSION} MDX expressions "
            f"(speedup gg vs naive: mean {statistics.mean(speedups):.2f}x, "
            f"best {max(speedups):.2f}x, worst {min(speedups):.2f}x; "
            f"{dedup_total} duplicate queries eliminated)",
        )
    )
    # GG never materially worse than naive on any session...
    for naive, gg in zip(per_algorithm["naive"], per_algorithm["gg"]):
        assert gg <= naive * 1.05
    # ...and clearly better on average.
    assert statistics.mean(speedups) > 1.2
    # TPLO sits between naive and GG on average.
    assert statistics.mean(per_algorithm["gg"]) <= statistics.mean(
        per_algorithm["tplo"]
    ) * 1.01
    assert statistics.mean(per_algorithm["tplo"]) <= statistics.mean(
        per_algorithm["naive"]
    ) * 1.01
